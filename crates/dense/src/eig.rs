//! Eigenvalue kernels for stiffness diagnostics.
//!
//! The MATEX paper defines circuit *stiffness* as `Re(λ_min)/Re(λ_max)` of
//! `A = −C⁻¹G` (Sec. 4.1) and relies on spectral arguments (small-magnitude
//! eigenvalues dominate the transient; rational Krylov captures them first).
//! This module provides the small-scale eigenvalue machinery used to
//! construct and verify the stiff test cases:
//!
//! * cyclic Jacobi for symmetric matrices (values + vectors),
//! * Hessenberg reduction + Francis double-shift QR for general real
//!   matrices (values only, possibly complex),
//! * power / inverse iteration for dominant and targeted eigenpairs.

use crate::vector::{norm2, normalize};
use crate::{DMat, DenseError, DenseLu, Result};

/// A real or complex eigenvalue, stored as `(re, im)`.
pub type Complex = (f64, f64);

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` where column `k` of the returned
/// matrix is the unit eigenvector for `eigenvalues[k]`. Eigenvalues are
/// sorted ascending.
///
/// # Errors
///
/// * [`DenseError::NotSquare`] for rectangular input.
/// * [`DenseError::NoConvergence`] if the off-diagonal mass fails to decay
///   (does not occur for symmetric finite input).
///
/// # Example
///
/// ```
/// use matex_dense::{DMat, eig::sym_eig};
///
/// # fn main() -> Result<(), matex_dense::DenseError> {
/// let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let (vals, _vecs) = sym_eig(&a)?;
/// assert!((vals[0] - 1.0).abs() < 1e-12);
/// assert!((vals[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn sym_eig(a: &DMat) -> Result<(Vec<f64>, DMat)> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = DMat::identity(n);
    let max_sweeps = 64;
    for sweep in 0..=max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-30 + 1e-15 * m.norm_fro() {
            break;
        }
        if sweep == max_sweeps {
            return Err(DenseError::NoConvergence {
                iterations: max_sweeps,
            });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation J(p,q,θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort ascending, permuting eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).expect("finite"));
    let vals: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vecs = DMat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        vecs.set_col(dst, &v.col(src));
    }
    Ok((vals, vecs))
}

/// Reduces `a` to upper Hessenberg form by Householder similarity
/// transformations (eigenvalue-preserving).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn hessenberg(a: &DMat) -> DMat {
    assert!(a.is_square(), "hessenberg: matrix must be square");
    let n = a.nrows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector annihilating h[k+2.., k].
        let mut norm2_col = 0.0;
        for i in (k + 1)..n {
            norm2_col += h[(i, k)] * h[(i, k)];
        }
        let norm = norm2_col.sqrt();
        if norm == 0.0 {
            continue;
        }
        let alpha = if h[(k + 1, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; n];
        v[k + 1] = h[(k + 1, k)] - alpha;
        for i in (k + 2)..n {
            v[i] = h[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm2;
        // H ← (I − β v vᵀ) H
        for j in 0..n {
            let mut s = 0.0;
            for i in (k + 1)..n {
                s += v[i] * h[(i, j)];
            }
            s *= beta;
            for i in (k + 1)..n {
                h[(i, j)] -= s * v[i];
            }
        }
        // H ← H (I − β v vᵀ)
        for i in 0..n {
            let mut s = 0.0;
            for j in (k + 1)..n {
                s += h[(i, j)] * v[j];
            }
            s *= beta;
            for j in (k + 1)..n {
                h[(i, j)] -= s * v[j];
            }
        }
    }
    // Zero out the (numerically tiny) entries below the first subdiagonal.
    for i in 0..n {
        for j in 0..i.saturating_sub(1) {
            h[(i, j)] = 0.0;
        }
    }
    h
}

/// All eigenvalues of a general real square matrix, as `(re, im)` pairs,
/// via Hessenberg reduction and the Francis double-shift QR iteration.
///
/// # Errors
///
/// * [`DenseError::NotSquare`] for rectangular input.
/// * [`DenseError::NotFinite`] for NaN/inf input.
/// * [`DenseError::NoConvergence`] if QR iteration stalls.
///
/// # Example
///
/// ```
/// use matex_dense::{DMat, eig::eig_vals};
///
/// # fn main() -> Result<(), matex_dense::DenseError> {
/// // Rotation-like matrix has eigenvalues ±i.
/// let a = DMat::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]);
/// let mut vals = eig_vals(&a)?;
/// vals.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
/// assert!((vals[0].1 + 1.0).abs() < 1e-12);
/// assert!((vals[1].1 - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn eig_vals(a: &DMat) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_finite() {
        return Err(DenseError::NotFinite);
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut h = hessenberg(a);
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);
    let mut hi = n; // active block is h[0..hi, 0..hi]
    let mut stall = 0usize;
    let mut total_iters = 0usize;
    let max_total = 80 * n.max(4);
    while hi > 0 {
        if hi == 1 {
            eigs.push((h[(0, 0)], 0.0));
            break;
        }
        // Find the start of the trailing unreduced block.
        let mut lo = hi - 1;
        while lo > 0 {
            let s = h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs();
            let s = if s == 0.0 { 1.0 } else { s };
            if h[(lo, lo - 1)].abs() <= f64::EPSILON * s {
                h[(lo, lo - 1)] = 0.0;
                break;
            }
            lo -= 1;
        }
        if lo == hi - 1 {
            // 1×1 block deflates.
            eigs.push((h[(hi - 1, hi - 1)], 0.0));
            hi -= 1;
            stall = 0;
            continue;
        }
        if lo == hi - 2 {
            // 2×2 block deflates: solve its characteristic quadratic.
            let (e1, e2) = eig2(
                h[(hi - 2, hi - 2)],
                h[(hi - 2, hi - 1)],
                h[(hi - 1, hi - 2)],
                h[(hi - 1, hi - 1)],
            );
            eigs.push(e1);
            eigs.push(e2);
            hi -= 2;
            stall = 0;
            continue;
        }
        total_iters += 1;
        stall += 1;
        if total_iters > max_total {
            return Err(DenseError::NoConvergence {
                iterations: total_iters,
            });
        }
        if stall % 11 == 10 {
            // Exceptional (ad-hoc) shift to break symmetric stalls.
            let s = h[(hi - 1, hi - 2)].abs() + h[(hi - 2, hi - 3)].abs();
            francis_step_with(&mut h, lo, hi, 2.0 * s, s * s);
        } else {
            // Standard Francis shift from the trailing 2×2 block.
            let m = hi - 1;
            let s = h[(m - 1, m - 1)] + h[(m, m)];
            let t = h[(m - 1, m - 1)] * h[(m, m)] - h[(m - 1, m)] * h[(m, m - 1)];
            francis_step_with(&mut h, lo, hi, s, t);
        }
    }
    Ok(eigs)
}

/// Eigenvalues of a real 2×2 `[[a, b], [c, d]]`.
fn eig2(a: f64, b: f64, c: f64, d: f64) -> (Complex, Complex) {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // Stable form: compute the larger-magnitude root first, then the
        // other via the product of roots (avoids cancellation).
        let big = if tr >= 0.0 {
            tr / 2.0 + sq
        } else {
            tr / 2.0 - sq
        };
        let (l1, l2) = if big != 0.0 {
            (big, det / big)
        } else {
            (tr / 2.0 + sq, tr / 2.0 - sq)
        };
        ((l1, 0.0), (l2, 0.0))
    } else {
        let im = (-disc).sqrt();
        ((tr / 2.0, im), (tr / 2.0, -im))
    }
}

/// One Francis double-shift QR sweep on the active block `h[lo..hi, lo..hi]`
/// with shift polynomial `z² − s z + t`.
fn francis_step_with(h: &mut DMat, lo: usize, hi: usize, s: f64, t: f64) {
    let n = h.nrows();
    // First column of (H − σ₁)(H − σ₂) e₁ restricted to the block.
    let mut x = h[(lo, lo)] * h[(lo, lo)] + h[(lo, lo + 1)] * h[(lo + 1, lo)] - s * h[(lo, lo)] + t;
    let mut y = h[(lo + 1, lo)] * (h[(lo, lo)] + h[(lo + 1, lo + 1)] - s);
    let mut z = if lo + 2 < hi {
        h[(lo + 1, lo)] * h[(lo + 2, lo + 1)]
    } else {
        0.0
    };
    for k in lo..hi - 2 {
        // Householder on (x, y, z).
        let (v, beta) = house3(x, y, z);
        if beta != 0.0 {
            let q = k.saturating_sub(1); // first affected column
                                         // Left multiply rows k..k+3.
            for j in q..n {
                let h0 = h[(k, j)];
                let h1 = h[(k + 1, j)];
                let h2 = h[(k + 2, j)];
                let sum = v[0] * h0 + v[1] * h1 + v[2] * h2;
                let bsum = beta * sum;
                h[(k, j)] = h0 - bsum * v[0];
                h[(k + 1, j)] = h1 - bsum * v[1];
                h[(k + 2, j)] = h2 - bsum * v[2];
            }
            // Right multiply columns k..k+3.
            let rmax = (k + 4).min(hi);
            for i in 0..rmax {
                let h0 = h[(i, k)];
                let h1 = h[(i, k + 1)];
                let h2 = h[(i, k + 2)];
                let sum = v[0] * h0 + v[1] * h1 + v[2] * h2;
                let bsum = beta * sum;
                h[(i, k)] = h0 - bsum * v[0];
                h[(i, k + 1)] = h1 - bsum * v[1];
                h[(i, k + 2)] = h2 - bsum * v[2];
            }
        }
        x = h[(k + 1, k)];
        y = h[(k + 2, k)];
        if k + 3 < hi {
            z = h[(k + 3, k)];
        } else {
            z = 0.0;
        }
    }
    // Final 2-element Householder on (x, y).
    let (v, beta) = house2(x, y);
    if beta != 0.0 {
        let k = hi - 2;
        let q = if k > lo { k - 1 } else { lo };
        for j in q..n {
            let h0 = h[(k, j)];
            let h1 = h[(k + 1, j)];
            let sum = v[0] * h0 + v[1] * h1;
            let bsum = beta * sum;
            h[(k, j)] = h0 - bsum * v[0];
            h[(k + 1, j)] = h1 - bsum * v[1];
        }
        for i in 0..hi {
            let h0 = h[(i, k)];
            let h1 = h[(i, k + 1)];
            let sum = v[0] * h0 + v[1] * h1;
            let bsum = beta * sum;
            h[(i, k)] = h0 - bsum * v[0];
            h[(i, k + 1)] = h1 - bsum * v[1];
        }
    }
}

/// Householder reflector for a 3-vector: returns `(v, β)` with `v[0] = 1`
/// convention folded into the returned unnormalized `v`.
fn house3(x: f64, y: f64, z: f64) -> ([f64; 3], f64) {
    let norm = (x * x + y * y + z * z).sqrt();
    if norm == 0.0 {
        return ([0.0; 3], 0.0);
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let v = [v0, y, z];
    let vnorm2 = v0 * v0 + y * y + z * z;
    if vnorm2 == 0.0 {
        return ([0.0; 3], 0.0);
    }
    (v, 2.0 / vnorm2)
}

/// Householder reflector for a 2-vector.
fn house2(x: f64, y: f64) -> ([f64; 2], f64) {
    let norm = (x * x + y * y).sqrt();
    if norm == 0.0 {
        return ([0.0; 2], 0.0);
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let v = [v0, y];
    let vnorm2 = v0 * v0 + y * y;
    if vnorm2 == 0.0 {
        return ([0.0; 2], 0.0);
    }
    (v, 2.0 / vnorm2)
}

/// Dominant eigenvalue magnitude estimate by power iteration.
///
/// Returns `(|λ_max| estimate, iterations used)`. For matrices with a real
/// dominant eigenvalue (the RC-circuit case) the estimate converges
/// geometrically.
///
/// # Panics
///
/// Panics if `a` is not square or `iters == 0`.
pub fn power_iteration(a: &DMat, iters: usize) -> (f64, usize) {
    assert!(a.is_square() && iters > 0);
    let n = a.nrows();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for it in 0..iters {
        let mut w = a.matvec(&v);
        let nw = norm2(&w);
        if nw == 0.0 {
            return (0.0, it);
        }
        for x in w.iter_mut() {
            *x /= nw;
        }
        let prev = lambda;
        lambda = nw;
        v = w;
        if it > 2 && (lambda - prev).abs() <= 1e-12 * lambda.abs() {
            return (lambda, it + 1);
        }
    }
    (lambda, iters)
}

/// Eigenvector for a known (approximate) real eigenvalue via shifted inverse
/// iteration.
///
/// # Errors
///
/// Returns [`DenseError::SingularPivot`] only if the shifted matrix is
/// exactly singular *and* perturbing the shift fails.
pub fn inverse_iteration(a: &DMat, lambda: f64, iters: usize) -> Result<Vec<f64>> {
    let n = a.nrows();
    // Shift slightly off the eigenvalue so the solve is merely
    // ill-conditioned (which is exactly what makes it converge fast).
    let scale = a.norm_inf().max(1.0);
    let mut shift = lambda + 1e-10 * scale;
    let shifted = |s: f64| {
        let mut m = a.clone();
        for i in 0..n {
            m[(i, i)] -= s;
        }
        m
    };
    let lu = match DenseLu::factor(&shifted(shift)) {
        Ok(f) => f,
        Err(_) => {
            shift = lambda + 1e-6 * scale;
            DenseLu::factor(&shifted(shift))?
        }
    };
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    normalize(&mut v);
    for _ in 0..iters {
        lu.solve_in_place(&mut v);
        if normalize(&mut v) == 0.0 {
            break;
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_eig_known_spectrum() {
        // Tridiagonal [-2, 1] matrix of size 4: eigenvalues -2 + 2cos(kπ/5).
        let n = 4;
        let a = DMat::from_fn(n, n, |i, j| {
            if i == j {
                -2.0
            } else if i.abs_diff(j) == 1 {
                1.0
            } else {
                0.0
            }
        });
        let (vals, vecs) = sym_eig(&a).unwrap();
        let pi = std::f64::consts::PI;
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| -2.0 + 2.0 * (k as f64 * pi / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (v, e) in vals.iter().zip(&expect) {
            assert!((v - e).abs() < 1e-12, "{v} vs {e}");
        }
        // A v = λ v for each column.
        for k in 0..n {
            let v = vecs.col(k);
            let av = a.matvec(&v);
            for i in 0..n {
                assert!((av[i] - vals[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn hessenberg_preserves_structure() {
        let a = DMat::from_rows(&[
            &[4.0, 1.0, 2.0, 3.0],
            &[1.0, 3.0, 0.0, 1.0],
            &[2.0, 0.0, 2.0, 0.5],
            &[3.0, 1.0, 0.5, 1.0],
        ]);
        let h = hessenberg(&a);
        for i in 2..4 {
            for j in 0..(i - 1) {
                assert_eq!(h[(i, j)], 0.0);
            }
        }
        // Trace is preserved by similarity.
        let tr_a: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let tr_h: f64 = (0..4).map(|i| h[(i, i)]).sum();
        assert!((tr_a - tr_h).abs() < 1e-12);
    }

    #[test]
    fn eig_vals_diagonal() {
        let a = DMat::from_diag(&[3.0, -1.0, 0.5]);
        let mut vals = eig_vals(&a).unwrap();
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((vals[0].0 + 1.0).abs() < 1e-12);
        assert!((vals[1].0 - 0.5).abs() < 1e-12);
        assert!((vals[2].0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eig_vals_known_general() {
        // [[1, 2], [3, 4]] has eigenvalues (5 ± sqrt(33))/2.
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut vals = eig_vals(&a).unwrap();
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let sq = 33.0_f64.sqrt();
        assert!((vals[0].0 - (5.0 - sq) / 2.0).abs() < 1e-10);
        assert!((vals[1].0 - (5.0 + sq) / 2.0).abs() < 1e-10);
    }

    #[test]
    fn eig_vals_complex_pair() {
        // Companion matrix of z² − 2z + 5 → 1 ± 2i.
        let a = DMat::from_rows(&[&[2.0, -5.0], &[1.0, 0.0]]);
        let mut vals = eig_vals(&a).unwrap();
        vals.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert!((vals[0].0 - 1.0).abs() < 1e-10 && (vals[0].1 + 2.0).abs() < 1e-10);
        assert!((vals[1].0 - 1.0).abs() < 1e-10 && (vals[1].1 - 2.0).abs() < 1e-10);
    }

    #[test]
    fn eig_vals_larger_spd() {
        // Symmetric case cross-check against Jacobi.
        let n = 8;
        let a = DMat::from_fn(n, n, |i, j| {
            if i == j {
                (i + 2) as f64
            } else if i.abs_diff(j) == 1 {
                -0.5
            } else {
                0.0
            }
        });
        let (jac, _) = sym_eig(&a).unwrap();
        let mut qr: Vec<f64> = eig_vals(&a).unwrap().iter().map(|e| e.0).collect();
        qr.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in jac.iter().zip(&qr) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn eig_vals_wide_spread_spectrum() {
        // Stiffness-style spectrum over 12 decades.
        let a = DMat::from_diag(&[-1.0, -1e4, -1e8, -1e12]);
        let mut vals: Vec<f64> = eig_vals(&a).unwrap().iter().map(|e| e.0).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] / -1e12 - 1.0).abs() < 1e-8);
        assert!((vals[3] / -1.0 - 1.0).abs() < 1e-8);
    }

    #[test]
    fn power_iteration_dominant() {
        let a = DMat::from_diag(&[1.0, -5.0, 2.0]);
        let (lam, _) = power_iteration(&a, 500);
        assert!((lam - 5.0).abs() < 1e-6);
    }

    #[test]
    fn inverse_iteration_recovers_eigenvector() {
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        // Eigenvalue 3 has eigenvector (1, 1)/sqrt(2).
        let v = inverse_iteration(&a, 3.0, 8).unwrap();
        assert!((v[0].abs() - v[1].abs()).abs() < 1e-8);
        let av = a.matvec(&v);
        for i in 0..2 {
            assert!((av[i] - 3.0 * v[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_matrix_ok() {
        assert!(eig_vals(&DMat::zeros(0, 0)).unwrap().is_empty());
    }
}
