//! Free functions on `&[f64]` vectors.
//!
//! MATEX manipulates node-voltage vectors with hundreds of thousands of
//! entries as plain `Vec<f64>`; these helpers implement the handful of BLAS-1
//! operations the solvers need without pulling in an external BLAS.

/// Dot product `xᵀ y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// One-norm `‖x‖₁ = Σ|xᵢ|`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm `‖x‖∞ = max|xᵢ|`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// In-place `y ← y + a·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// In-place `x ← a·x`.
pub fn scale_in_place(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Linear combination `Σ cᵢ·vᵢ` of equally sized vectors.
///
/// Returns the zero vector of length `len` when `terms` is empty.
///
/// # Panics
///
/// Panics if any vector's length differs from `len`.
pub fn lin_comb(len: usize, terms: &[(f64, &[f64])]) -> Vec<f64> {
    let mut out = vec![0.0; len];
    for (c, v) in terms {
        axpy(*c, v, &mut out);
    }
    out
}

/// Normalizes `x` in place and returns its former 2-norm.
///
/// When `‖x‖₂ == 0` the vector is left untouched and `0.0` is returned, so
/// callers can detect the degenerate "zero starting vector" case that
/// terminates an Arnoldi process.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale_in_place(1.0 / n, x);
    }
    n
}

/// The `i`-th standard basis vector of length `n`.
///
/// # Panics
///
/// Panics if `i >= n`.
pub fn unit_vector(n: usize, i: usize) -> Vec<f64> {
    assert!(i < n, "unit_vector: index {i} out of range {n}");
    let mut v = vec![0.0; n];
    v[i] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, -4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn lin_comb_empty_is_zero() {
        assert_eq!(lin_comb(3, &[]), vec![0.0; 3]);
    }

    #[test]
    fn lin_comb_combines() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let c = lin_comb(2, &[(2.0, &a[..]), (-3.0, &b[..])]);
        assert_eq!(c, vec![2.0, -3.0]);
    }

    #[test]
    fn normalize_zero_vector_reports_zero() {
        let mut z = [0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn normalize_makes_unit() {
        let mut v = [3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unit_vector_basis() {
        assert_eq!(unit_vector(3, 1), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_vector_oob_panics() {
        let _ = unit_vector(2, 2);
    }
}
