//! Small dense linear-algebra kernels for the MATEX power-grid simulator.
//!
//! MATEX approximates `e^{hA} v` for a huge sparse `A` by projecting onto a
//! Krylov subspace of dimension `m` (typically 5–30, a few hundred in the
//! worst case). Every per-step computation on the projected system happens on
//! *small dense* matrices:
//!
//! * the Hessenberg matrix `H_m` produced by the Arnoldi process,
//! * its inverse (inverted / rational Krylov variants),
//! * the matrix exponential `e^{h H_m}` (Padé scaling-and-squaring, the same
//!   algorithm family as MATLAB's `expm` used by the paper),
//! * eigenvalue diagnostics used to measure circuit stiffness.
//!
//! This crate implements those kernels from scratch with no external
//! dependencies. It is deliberately tuned for the "small but numerically
//! nasty" regime (stiffness ratios up to `1e16`), not for large-matrix BLAS
//! throughput.

// Index loops mirror the reference LAPACK-style formulations these
// kernels are transcribed from; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
//!
//! # Example
//!
//! ```
//! use matex_dense::{DMat, expm};
//!
//! // e^{0} == I
//! let z = DMat::zeros(3, 3);
//! let e = expm(&z).unwrap();
//! assert!((&e - &DMat::identity(3)).norm_inf() < 1e-14);
//! ```

mod error;
mod expm;
mod lu;
mod matrix;
mod qr;
mod vector;

pub mod eig;

pub use error::DenseError;
pub use expm::{expm, expm_col0, expm_col0_into, expm_col0_ladder, phi1, ExpmScratch};
pub use lu::DenseLu;
pub use matrix::DMat;
pub use qr::DenseQr;
pub use vector::{
    axpy, dot, lin_comb, norm1, norm2, norm_inf, normalize, scale_in_place, sub, unit_vector,
};

/// Result alias used by all fallible dense operations.
pub type Result<T> = std::result::Result<T, DenseError>;
