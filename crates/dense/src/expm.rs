//! Dense matrix exponential via Padé scaling-and-squaring.
//!
//! This is the same algorithm family as MATLAB's `expm` (Higham 2005), which
//! the MATEX paper uses to evaluate `e^{h H_m}` on the small projected
//! Hessenberg matrices. The cost is `O(m³)` — the `T_H` term of the paper's
//! complexity model (Sec. 3.4).

use crate::{DMat, DenseError, DenseLu, Result};

/// Padé coefficient tables, degree → coefficients `b₀..b_m` (Higham 2005,
/// Table 2.3 generators).
const PADE3: [f64; 4] = [120.0, 60.0, 12.0, 1.0];
const PADE5: [f64; 6] = [30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0];
const PADE7: [f64; 8] = [
    17_297_280.0,
    8_648_640.0,
    1_995_840.0,
    277_200.0,
    25_200.0,
    1_512.0,
    56.0,
    1.0,
];
const PADE9: [f64; 10] = [
    17_643_225_600.0,
    8_821_612_800.0,
    2_075_673_600.0,
    302_702_400.0,
    30_270_240.0,
    2_162_160.0,
    110_880.0,
    3_960.0,
    90.0,
    1.0,
];
const PADE13: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// 1-norm thresholds θ_m below which the degree-m Padé approximant meets
/// double-precision accuracy (Higham 2005, Table 2.3).
const THETA3: f64 = 1.495_585_217_958_292e-2;
const THETA5: f64 = 2.539_398_330_063_23e-1;
const THETA7: f64 = 9.504_178_996_162_932e-1;
const THETA9: f64 = 2.097_847_961_257_068;
const THETA13: f64 = 5.371_920_351_148_152;

/// Computes the matrix exponential `e^A`.
///
/// Uses the [m/m] Padé approximant of the smallest adequate degree
/// (3/5/7/9/13) with scaling-and-squaring for large-norm inputs.
///
/// # Errors
///
/// * [`DenseError::NotSquare`] when `a` is rectangular.
/// * [`DenseError::NotFinite`] when `a` contains NaN/inf.
/// * [`DenseError::SingularPivot`] if the Padé denominator cannot be
///   factored (does not occur for finite inputs in practice).
///
/// # Example
///
/// ```
/// use matex_dense::{DMat, expm};
///
/// # fn main() -> Result<(), matex_dense::DenseError> {
/// // For diagonal matrices, expm exponentiates the diagonal.
/// let d = DMat::from_diag(&[0.0, (2.0_f64).ln()]);
/// let e = expm(&d)?;
/// assert!((e[(1, 1)] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &DMat) -> Result<DMat> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_finite() {
        return Err(DenseError::NotFinite);
    }
    let norm = a.norm_one();
    if norm <= THETA9 {
        let coeffs: &[f64] = if norm <= THETA3 {
            &PADE3
        } else if norm <= THETA5 {
            &PADE5
        } else if norm <= THETA7 {
            &PADE7
        } else {
            &PADE9
        };
        return pade_low(a, coeffs);
    }
    // Scaling and squaring with degree-13 Padé.
    let s = if norm > THETA13 {
        ((norm / THETA13).log2().ceil()) as u32
    } else {
        0
    };
    let scaled = a.scaled(0.5_f64.powi(s as i32));
    let mut e = pade13(&scaled)?;
    for _ in 0..s {
        e = e.matmul(&e)?;
    }
    // Intermediate squaring of ill-conditioned inputs can overflow; a
    // non-finite exponential must never escape silently.
    if !e.is_finite() {
        return Err(DenseError::NotFinite);
    }
    Ok(e)
}

/// Degree 3/5/7/9 Padé approximant (even/odd polynomial split).
fn pade_low(a: &DMat, b: &[f64]) -> Result<DMat> {
    let n = a.nrows();
    let ident = DMat::identity(n);
    let a2 = a.matmul(a)?;
    // Powers of A²: pows[k] = A^{2k}, k = 0..=(m-1)/2
    let mut pows: Vec<DMat> = vec![ident.clone(), a2.clone()];
    let half = (b.len() - 1) / 2; // m/2 rounded down; m odd => (m-1)/2
    while pows.len() <= half {
        let next = pows.last().expect("nonempty").matmul(&a2)?;
        pows.push(next);
    }
    // U = A * Σ_{k} b[2k+1] A^{2k};  V = Σ_{k} b[2k] A^{2k}
    let mut u_inner = DMat::zeros(n, n);
    let mut v = DMat::zeros(n, n);
    for (k, p) in pows.iter().enumerate() {
        if 2 * k + 1 < b.len() {
            u_inner = &u_inner + &p.scaled(b[2 * k + 1]);
        }
        v = &v + &p.scaled(b[2 * k]);
    }
    let u = a.matmul(&u_inner)?;
    pade_solve(&u, &v)
}

/// Degree-13 Padé approximant with the Higham factored form.
fn pade13(a: &DMat) -> Result<DMat> {
    let n = a.nrows();
    let b = &PADE13;
    let ident = DMat::identity(n);
    let a2 = a.matmul(a)?;
    let a4 = a2.matmul(&a2)?;
    let a6 = a4.matmul(&a2)?;
    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let w1 = &(&a6.scaled(b[13]) + &a4.scaled(b[11])) + &a2.scaled(b[9]);
    let w2 = &(&(&a6.scaled(b[7]) + &a4.scaled(b[5])) + &a2.scaled(b[3])) + &ident.scaled(b[1]);
    let u = a.matmul(&(&a6.matmul(&w1)? + &w2))?;
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let z1 = &(&a6.scaled(b[12]) + &a4.scaled(b[10])) + &a2.scaled(b[8]);
    let z2 = &(&(&a6.scaled(b[6]) + &a4.scaled(b[4])) + &a2.scaled(b[2])) + &ident.scaled(b[0]);
    let v = &a6.matmul(&z1)? + &z2;
    pade_solve(&u, &v)
}

/// Solves `(V − U) X = (V + U)` for the Padé quotient.
fn pade_solve(u: &DMat, v: &DMat) -> Result<DMat> {
    let denom = v - u;
    let numer = v + u;
    DenseLu::factor(&denom)?.solve_mat(&numer)
}

/// First column of `e^{A}`, i.e. `e^{A} e₁`.
///
/// This is the quantity MATEX evaluates at every time point:
/// `x(t+h) ≈ ‖v‖ V_m e^{h H_m} e₁`. For the small `m × m` Hessenberg blocks
/// the full exponential is formed and its first column returned.
///
/// # Errors
///
/// Same as [`expm`].
pub fn expm_col0(a: &DMat) -> Result<Vec<f64>> {
    Ok(expm(a)?.col(0))
}

/// The phi-1 function `φ₁(A) = A⁻¹(e^A − I)`, evaluated stably via an
/// augmented-matrix trick: `expm([[A, I], [0, 0]])` has `φ₁(A)` in its upper
/// right block. Useful for exponential integrators with constant inputs and
/// for validating the closed-form PWL update.
///
/// # Errors
///
/// Same as [`expm`].
pub fn phi1(a: &DMat) -> Result<DMat> {
    let n = a.nrows();
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let mut aug = DMat::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            aug[(i, j)] = a[(i, j)];
        }
        aug[(i, n + i)] = 1.0;
    }
    let e = expm(&aug)?;
    Ok(DMat::from_fn(n, n, |i, j| e[(i, n + j)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Taylor-series reference implementation (only valid for small norms).
    fn expm_taylor(a: &DMat, terms: usize) -> DMat {
        let n = a.nrows();
        let mut sum = DMat::identity(n);
        let mut term = DMat::identity(n);
        for k in 1..=terms {
            term = term.matmul(a).unwrap().scaled(1.0 / k as f64);
            sum = &sum + &term;
        }
        sum
    }

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&DMat::zeros(4, 4)).unwrap();
        assert!(e.max_abs_diff(&DMat::identity(4)) < 1e-15);
    }

    #[test]
    fn expm_diagonal() {
        let d = DMat::from_diag(&[1.0, -2.0, 0.5]);
        let e = expm(&d).unwrap();
        for (i, &v) in [1.0_f64, -2.0, 0.5].iter().enumerate() {
            assert!((e[(i, i)] - v.exp()).abs() < 1e-12 * v.exp().max(1.0));
        }
        assert!(e[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn expm_matches_taylor_small_norm() {
        let a = DMat::from_rows(&[&[0.01, 0.002], &[-0.003, 0.004]]);
        let e = expm(&a).unwrap();
        let t = expm_taylor(&a, 20);
        assert!(e.max_abs_diff(&t) < 1e-14);
    }

    #[test]
    fn expm_matches_taylor_medium_norm() {
        let a = DMat::from_rows(&[&[0.9, 0.3], &[-0.2, 0.5]]);
        let e = expm(&a).unwrap();
        let t = expm_taylor(&a, 40);
        assert!(e.max_abs_diff(&t) < 1e-12);
    }

    #[test]
    fn expm_large_norm_scaling_squaring() {
        // e^{[[0, w], [-w, 0]]} is a rotation by w.
        let w = 100.0;
        let a = DMat::from_rows(&[&[0.0, w], &[-w, 0.0]]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - w.cos()).abs() < 1e-9);
        assert!((e[(0, 1)] - w.sin()).abs() < 1e-9);
    }

    #[test]
    fn expm_group_property() {
        // e^{A} e^{A} = e^{2A}
        let a = DMat::from_rows(&[&[0.3, 0.1], &[0.0, -0.4]]);
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scaled(2.0)).unwrap();
        let sq = e1.matmul(&e1).unwrap();
        assert!(sq.max_abs_diff(&e2) < 1e-12);
    }

    #[test]
    fn expm_inverse_property() {
        // e^{A} e^{-A} = I
        let a = DMat::from_rows(&[&[1.2, -0.7], &[0.4, 0.9]]);
        let p = expm(&a)
            .unwrap()
            .matmul(&expm(&a.scaled(-1.0)).unwrap())
            .unwrap();
        assert!(p.max_abs_diff(&DMat::identity(2)) < 1e-10);
    }

    #[test]
    fn expm_stiff_decay_underflows_gracefully() {
        // Very stiff decay: entries underflow to ~0, no NaN.
        let a = DMat::from_diag(&[-1e6, -1.0]);
        let e = expm(&a).unwrap();
        assert!(e.is_finite());
        assert!(e[(0, 0)].abs() < 1e-200);
        // Squaring 2^s times amplifies rounding error by ~2^s; allow for it.
        assert!((e[(1, 1)] - (-1.0_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn expm_col0_matches_full() {
        let a = DMat::from_rows(&[&[0.2, 1.0, 0.0], &[0.3, -0.1, 0.5], &[0.0, 0.2, 0.1]]);
        let full = expm(&a).unwrap();
        let c = expm_col0(&a).unwrap();
        for i in 0..3 {
            assert_eq!(c[i], full[(i, 0)]);
        }
    }

    #[test]
    fn phi1_of_zero_is_identity() {
        // φ₁(0) = I
        let p = phi1(&DMat::zeros(3, 3)).unwrap();
        assert!(p.max_abs_diff(&DMat::identity(3)) < 1e-14);
    }

    #[test]
    fn phi1_satisfies_definition() {
        // A φ₁(A) = e^A − I
        let a = DMat::from_rows(&[&[0.5, 0.2], &[-0.1, 0.8]]);
        let p = phi1(&a).unwrap();
        let lhs = a.matmul(&p).unwrap();
        let rhs = &expm(&a).unwrap() - &DMat::identity(2);
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn expm_rejects_rectangular() {
        assert!(matches!(
            expm(&DMat::zeros(2, 3)),
            Err(DenseError::NotSquare { .. })
        ));
    }

    #[test]
    fn expm_rejects_nan() {
        let mut a = DMat::zeros(2, 2);
        a[(0, 0)] = f64::INFINITY;
        assert!(matches!(expm(&a), Err(DenseError::NotFinite)));
    }
}
