//! Dense matrix exponential via Padé scaling-and-squaring.
//!
//! This is the same algorithm family as MATLAB's `expm` (Higham 2005), which
//! the MATEX paper uses to evaluate `e^{h H_m}` on the small projected
//! Hessenberg matrices. The cost is `O(m³)` — the `T_H` term of the paper's
//! complexity model (Sec. 3.4).

use crate::{DMat, DenseError, DenseLu, Result};

/// Padé coefficient tables, degree → coefficients `b₀..b_m` (Higham 2005,
/// Table 2.3 generators).
const PADE3: [f64; 4] = [120.0, 60.0, 12.0, 1.0];
const PADE5: [f64; 6] = [30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0];
const PADE7: [f64; 8] = [
    17_297_280.0,
    8_648_640.0,
    1_995_840.0,
    277_200.0,
    25_200.0,
    1_512.0,
    56.0,
    1.0,
];
const PADE9: [f64; 10] = [
    17_643_225_600.0,
    8_821_612_800.0,
    2_075_673_600.0,
    302_702_400.0,
    30_270_240.0,
    2_162_160.0,
    110_880.0,
    3_960.0,
    90.0,
    1.0,
];
const PADE13: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// 1-norm thresholds θ_m below which the degree-m Padé approximant meets
/// double-precision accuracy (Higham 2005, Table 2.3).
const THETA3: f64 = 1.495_585_217_958_292e-2;
const THETA5: f64 = 2.539_398_330_063_23e-1;
const THETA7: f64 = 9.504_178_996_162_932e-1;
const THETA9: f64 = 2.097_847_961_257_068;
const THETA13: f64 = 5.371_920_351_148_152;

/// Computes the matrix exponential `e^A`.
///
/// Uses the [m/m] Padé approximant of the smallest adequate degree
/// (3/5/7/9/13) with scaling-and-squaring for large-norm inputs.
///
/// # Errors
///
/// * [`DenseError::NotSquare`] when `a` is rectangular.
/// * [`DenseError::NotFinite`] when `a` contains NaN/inf.
/// * [`DenseError::SingularPivot`] if the Padé denominator cannot be
///   factored (does not occur for finite inputs in practice).
///
/// # Example
///
/// ```
/// use matex_dense::{DMat, expm};
///
/// # fn main() -> Result<(), matex_dense::DenseError> {
/// // For diagonal matrices, expm exponentiates the diagonal.
/// let d = DMat::from_diag(&[0.0, (2.0_f64).ln()]);
/// let e = expm(&d)?;
/// assert!((e[(1, 1)] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &DMat) -> Result<DMat> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_finite() {
        return Err(DenseError::NotFinite);
    }
    let norm = a.norm_one();
    if norm <= THETA9 {
        let coeffs: &[f64] = if norm <= THETA3 {
            &PADE3
        } else if norm <= THETA5 {
            &PADE5
        } else if norm <= THETA7 {
            &PADE7
        } else {
            &PADE9
        };
        return pade_low(a, coeffs);
    }
    // Scaling and squaring with degree-13 Padé.
    let s = if norm > THETA13 {
        ((norm / THETA13).log2().ceil()) as u32
    } else {
        0
    };
    let scaled = a.scaled(0.5_f64.powi(s as i32));
    let mut e = pade13(&scaled)?;
    for _ in 0..s {
        e = e.matmul(&e)?;
    }
    // Intermediate squaring of ill-conditioned inputs can overflow; a
    // non-finite exponential must never escape silently.
    if !e.is_finite() {
        return Err(DenseError::NotFinite);
    }
    Ok(e)
}

/// Degree 3/5/7/9 Padé approximant (even/odd polynomial split).
fn pade_low(a: &DMat, b: &[f64]) -> Result<DMat> {
    let n = a.nrows();
    let ident = DMat::identity(n);
    let a2 = a.matmul(a)?;
    // Powers of A²: pows[k] = A^{2k}, k = 0..=(m-1)/2
    let mut pows: Vec<DMat> = vec![ident.clone(), a2.clone()];
    let half = (b.len() - 1) / 2; // m/2 rounded down; m odd => (m-1)/2
    while pows.len() <= half {
        let next = pows.last().expect("nonempty").matmul(&a2)?;
        pows.push(next);
    }
    // U = A * Σ_{k} b[2k+1] A^{2k};  V = Σ_{k} b[2k] A^{2k}
    let mut u_inner = DMat::zeros(n, n);
    let mut v = DMat::zeros(n, n);
    for (k, p) in pows.iter().enumerate() {
        if 2 * k + 1 < b.len() {
            u_inner = &u_inner + &p.scaled(b[2 * k + 1]);
        }
        v = &v + &p.scaled(b[2 * k]);
    }
    let u = a.matmul(&u_inner)?;
    pade_solve(&u, &v)
}

/// Degree-13 Padé approximant with the Higham factored form.
fn pade13(a: &DMat) -> Result<DMat> {
    let n = a.nrows();
    let b = &PADE13;
    let ident = DMat::identity(n);
    let a2 = a.matmul(a)?;
    let a4 = a2.matmul(&a2)?;
    let a6 = a4.matmul(&a2)?;
    // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let w1 = &(&a6.scaled(b[13]) + &a4.scaled(b[11])) + &a2.scaled(b[9]);
    let w2 = &(&(&a6.scaled(b[7]) + &a4.scaled(b[5])) + &a2.scaled(b[3])) + &ident.scaled(b[1]);
    let u = a.matmul(&(&a6.matmul(&w1)? + &w2))?;
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    let z1 = &(&a6.scaled(b[12]) + &a4.scaled(b[10])) + &a2.scaled(b[8]);
    let z2 = &(&(&a6.scaled(b[6]) + &a4.scaled(b[4])) + &a2.scaled(b[2])) + &ident.scaled(b[0]);
    let v = &a6.matmul(&z1)? + &z2;
    pade_solve(&u, &v)
}

/// Solves `(V − U) X = (V + U)` for the Padé quotient.
fn pade_solve(u: &DMat, v: &DMat) -> Result<DMat> {
    let denom = v - u;
    let numer = v + u;
    DenseLu::factor(&denom)?.solve_mat(&numer)
}

/// First column of `e^{A}`, i.e. `e^{A} e₁`.
///
/// This is the quantity MATEX evaluates at every time point:
/// `x(t+h) ≈ ‖v‖ V_m e^{h H_m} e₁`. A thin wrapper over
/// [`expm_col0_into`] with a one-shot scratch; hot paths should hold an
/// [`ExpmScratch`] and call the into-variant directly.
///
/// # Errors
///
/// Same as [`expm`].
pub fn expm_col0(a: &DMat) -> Result<Vec<f64>> {
    let mut scratch = ExpmScratch::new();
    let mut out = vec![0.0; a.nrows()];
    expm_col0_into(a, &mut scratch, &mut out)?;
    Ok(out)
}

/// Reusable buffers for the allocation-free exponential kernels
/// ([`expm_col0_into`], [`expm_col0_ladder`]).
///
/// All slots are lazily sized to the input dimension; after the first
/// call at a given size, subsequent calls perform **zero** heap
/// allocations (verified by the counting-allocator test in
/// `matex-core/tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct ExpmScratch {
    /// `A²` and the rotating even-power slots.
    a2: DMat,
    pa: DMat,
    pb: DMat,
    /// Padé polynomial accumulators.
    w1: DMat,
    w2: DMat,
    t: DMat,
    u: DMat,
    v: DMat,
    /// The exponential itself plus the squaring ping-pong partner.
    e: DMat,
    e2: DMat,
    /// The `2^{-s}`-scaled input.
    scaled: DMat,
    /// Reusable Padé-denominator factorization.
    lu: Option<DenseLu>,
    /// Column scratch for the triangular solves.
    col: Vec<f64>,
}

impl ExpmScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> ExpmScratch {
        let z = || DMat::zeros(0, 0);
        ExpmScratch {
            a2: z(),
            pa: z(),
            pb: z(),
            w1: z(),
            w2: z(),
            t: z(),
            u: z(),
            v: z(),
            e: z(),
            e2: z(),
            scaled: z(),
            lu: None,
            col: Vec::new(),
        }
    }

    /// Sizes every slot for `n × n` inputs (reallocates only on change).
    fn ensure(&mut self, n: usize) {
        if self.a2.nrows() != n {
            for m in [
                &mut self.a2,
                &mut self.pa,
                &mut self.pb,
                &mut self.w1,
                &mut self.w2,
                &mut self.t,
                &mut self.u,
                &mut self.v,
                &mut self.e,
                &mut self.e2,
                &mut self.scaled,
            ] {
                *m = DMat::zeros(n, n);
            }
        }
        if self.col.len() != n {
            self.col.resize(n, 0.0);
        }
    }

    /// Factors the Padé denominator in `self.t`, reusing the stored
    /// factorization's buffers.
    fn refactor_denominator(&mut self) -> Result<()> {
        match &mut self.lu {
            Some(lu) => lu.refactor(&self.t),
            None => {
                self.lu = Some(DenseLu::factor(&self.t)?);
                Ok(())
            }
        }
    }
}

impl Default for ExpmScratch {
    fn default() -> Self {
        ExpmScratch::new()
    }
}

/// Degree 3/5/7/9 Padé numerator/denominator halves into `s.u` / `s.v`,
/// performing bit-for-bit the arithmetic of [`pade_low`] without
/// allocating.
fn pade_low_into(a: &DMat, b: &[f64], s: &mut ExpmScratch) {
    let n = a.nrows();
    a.matmul_into(a, &mut s.a2);
    // k = 0 term (identity power): every Padé coefficient is positive,
    // so the off-diagonal `+= b·0.0` of the allocating version leaves
    // exactly the +0.0 the zero-fill already wrote.
    s.w1.as_mut_slice().fill(0.0);
    s.v.as_mut_slice().fill(0.0);
    for i in 0..n {
        s.w1[(i, i)] += b[1];
        s.v[(i, i)] += b[0];
    }
    // k = 1..=half with the even powers A^{2k} built incrementally.
    let half = (b.len() - 1) / 2;
    s.pa.copy_from(&s.a2);
    for k in 1..=half {
        let (w1, v, pa) = (s.w1.as_mut_slice(), s.v.as_mut_slice(), s.pa.as_slice());
        let (bu, bv) = (b[2 * k + 1], b[2 * k]);
        for (e, &p) in pa.iter().enumerate() {
            w1[e] += bu * p;
            v[e] += bv * p;
        }
        if k < half {
            s.pa.matmul_into(&s.a2, &mut s.pb);
            std::mem::swap(&mut s.pa, &mut s.pb);
        }
    }
    // U = A · Σ b[2k+1] A^{2k}
    a.matmul_into(&s.w1, &mut s.u);
}

/// Degree-13 Padé halves into `s.u` / `s.v` (Higham factored form),
/// bit-for-bit the arithmetic of [`pade13`] without allocating.
fn pade13_into(a: &DMat, s: &mut ExpmScratch) {
    let n = a.nrows();
    let b = &PADE13;
    a.matmul_into(a, &mut s.a2); // A²
    s.a2.matmul_into(&s.a2, &mut s.pa); // A⁴
    s.pa.matmul_into(&s.a2, &mut s.pb); // A⁶
    {
        let (a2, a4, a6) = (s.a2.as_slice(), s.pa.as_slice(), s.pb.as_slice());
        let (w1, w2) = (s.w1.as_mut_slice(), s.w2.as_mut_slice());
        for e in 0..n * n {
            // W1 = b13 A6 + b11 A4 + b9 A2
            w1[e] = b[13] * a6[e] + b[11] * a4[e] + b[9] * a2[e];
            // W2 = b7 A6 + b5 A4 + b3 A2 + b1 I (the identity term is a
            // genuine `+ b·{0,1}` so ±0.0 handling matches the
            // allocating version).
            let ie = if e % (n + 1) == 0 { 1.0 } else { 0.0 };
            w2[e] = ((b[7] * a6[e] + b[5] * a4[e]) + b[3] * a2[e]) + b[1] * ie;
        }
    }
    // U = A (A6 W1 + W2)
    s.pb.matmul_into(&s.w1, &mut s.t);
    {
        let (t, w2) = (s.t.as_mut_slice(), s.w2.as_slice());
        for (te, &we) in t.iter_mut().zip(w2) {
            *te += we;
        }
    }
    a.matmul_into(&s.t, &mut s.u);
    // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    {
        let (a2, a4, a6) = (s.a2.as_slice(), s.pa.as_slice(), s.pb.as_slice());
        let (w1, w2) = (s.w1.as_mut_slice(), s.w2.as_mut_slice());
        for e in 0..n * n {
            w1[e] = b[12] * a6[e] + b[10] * a4[e] + b[8] * a2[e];
            let ie = if e % (n + 1) == 0 { 1.0 } else { 0.0 };
            w2[e] = ((b[6] * a6[e] + b[4] * a4[e]) + b[2] * a2[e]) + b[0] * ie;
        }
    }
    s.pb.matmul_into(&s.w1, &mut s.t);
    {
        let (v, t, w2) = (s.v.as_mut_slice(), s.t.as_slice(), s.w2.as_slice());
        for e in 0..n * n {
            v[e] = t[e] + w2[e];
        }
    }
}

/// Solves the Padé quotient for its first column only: one triangular
/// solve instead of `n` (the `T_H` saving of the batched evaluator).
fn pade_solve_col0(s: &mut ExpmScratch, out: &mut [f64]) -> Result<()> {
    let n = s.u.nrows();
    {
        let (t, u, v) = (s.t.as_mut_slice(), s.u.as_slice(), s.v.as_slice());
        for e in 0..n * n {
            t[e] = v[e] - u[e];
        }
    }
    for i in 0..n {
        s.col[i] = s.v[(i, 0)] + s.u[(i, 0)];
    }
    s.refactor_denominator()?;
    let lu = s.lu.as_ref().expect("denominator factored");
    lu.solve_in_place(&mut s.col);
    out.copy_from_slice(&s.col);
    Ok(())
}

/// Solves the full Padé quotient into `s.e`, column by column in the
/// exact order of the allocating [`pade_solve`].
fn pade_solve_full(s: &mut ExpmScratch) -> Result<()> {
    let n = s.u.nrows();
    {
        let (t, u, v, e) = (
            s.t.as_mut_slice(),
            s.u.as_slice(),
            s.v.as_slice(),
            s.e.as_mut_slice(),
        );
        for k in 0..n * n {
            t[k] = v[k] - u[k];
            e[k] = v[k] + u[k];
        }
    }
    s.refactor_denominator()?;
    let lu = s.lu.as_ref().expect("denominator factored");
    for j in 0..n {
        for i in 0..n {
            s.col[i] = s.e[(i, j)];
        }
        lu.solve_in_place(&mut s.col);
        for i in 0..n {
            s.e[(i, j)] = s.col[i];
        }
    }
    Ok(())
}

/// Allocation-free `e^{A} e₁`: writes the first column of the matrix
/// exponential into `out`, reusing `scratch` for every intermediate.
///
/// Performs bit-for-bit the arithmetic of [`expm_col0`] (which is a
/// wrapper over this function). When no squaring is needed, only the
/// first column of the Padé quotient is solved — `O(m²)` instead of the
/// `O(m³)` full solve, on top of the removed allocations.
///
/// # Errors
///
/// As [`expm`], except that the post-squaring finiteness check covers
/// only the returned column when the full quotient was never formed.
///
/// # Panics
///
/// Panics when `out.len()` differs from the dimension of `a`.
pub fn expm_col0_into(a: &DMat, scratch: &mut ExpmScratch, out: &mut [f64]) -> Result<()> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_finite() {
        return Err(DenseError::NotFinite);
    }
    let n = a.nrows();
    assert_eq!(out.len(), n, "expm_col0_into: output length mismatch");
    scratch.ensure(n);
    let norm = a.norm_one();
    if norm <= THETA9 {
        let coeffs: &[f64] = if norm <= THETA3 {
            &PADE3
        } else if norm <= THETA5 {
            &PADE5
        } else if norm <= THETA7 {
            &PADE7
        } else {
            &PADE9
        };
        pade_low_into(a, coeffs, scratch);
        return pade_solve_col0(scratch, out);
    }
    // Scaling and squaring with degree-13 Padé.
    let s = if norm > THETA13 {
        ((norm / THETA13).log2().ceil()) as u32
    } else {
        0
    };
    let mut scaled = std::mem::replace(&mut scratch.scaled, DMat::zeros(0, 0));
    a.scaled_into(0.5_f64.powi(s as i32), &mut scaled);
    pade13_into(&scaled, scratch);
    scratch.scaled = scaled;
    if s == 0 {
        pade_solve_col0(scratch, out)?;
        if !out.iter().all(|v| v.is_finite()) {
            return Err(DenseError::NotFinite);
        }
        return Ok(());
    }
    pade_solve_full(scratch)?;
    for _ in 0..s {
        s_square(scratch);
    }
    if !scratch.e.is_finite() {
        return Err(DenseError::NotFinite);
    }
    for i in 0..n {
        out[i] = scratch.e[(i, 0)];
    }
    Ok(())
}

/// One squaring step of the scratch exponential (`E ← E²`).
fn s_square(s: &mut ExpmScratch) {
    s.e.matmul_into(&s.e, &mut s.e2);
    std::mem::swap(&mut s.e, &mut s.e2);
}

/// The `e₁`-columns of `e^{A}, e^{A/2}, …, e^{A/2^{s_max}}` from a
/// **single** scaling-and-squaring pass.
///
/// This is the kernel behind MATEX's sub-step search: the squaring
/// intermediates of one `expm(A)` *are* the exponentials at the halved
/// step distances, so the whole ladder costs one Padé evaluation plus
/// one `O(m³)` matrix square per rung — where the per-trial search paid
/// a full `expm` at every halving.
///
/// Rungs are produced bottom-up (deepest first): rung `s` is written to
/// `out[s·n .. (s+1)·n]` and handed to `continue_up(s, col)`; returning
/// `false` stops the ascent (shallower rungs are left untouched —
/// estimate-driven early exit). The callback is also invoked for rung 0,
/// whose return value is ignored. Returns the lowest rung index
/// produced.
///
/// The ladder always uses the degree-13 Padé kernel with at least
/// `s_max` scaling steps, so rung `s` equals the standalone
/// `e^{A/2^s}` to rounding (not bitwise — the standalone evaluation may
/// pick a lower Padé degree). Non-finite squaring overflow is not an
/// error here: the garbage column yields a NaN/∞ residual estimate and
/// the callback is expected to stop the ascent.
///
/// # Errors
///
/// As [`expm`] for the base Padé evaluation (non-square / non-finite
/// input, singular denominator).
///
/// # Panics
///
/// Panics when `out.len() != (s_max + 1) · n`.
pub fn expm_col0_ladder(
    a: &DMat,
    s_max: usize,
    scratch: &mut ExpmScratch,
    out: &mut [f64],
    mut continue_up: impl FnMut(usize, &[f64]) -> bool,
) -> Result<usize> {
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_finite() {
        return Err(DenseError::NotFinite);
    }
    let n = a.nrows();
    assert_eq!(
        out.len(),
        (s_max + 1) * n,
        "expm_col0_ladder: output length mismatch"
    );
    scratch.ensure(n);
    let norm = a.norm_one();
    let s_nat = if norm > THETA13 {
        ((norm / THETA13).log2().ceil()) as u32
    } else {
        0
    };
    let s_total = s_nat.max(s_max as u32);
    let mut scaled = std::mem::replace(&mut scratch.scaled, DMat::zeros(0, 0));
    a.scaled_into(0.5_f64.powi(s_total as i32), &mut scaled);
    pade13_into(&scaled, scratch);
    scratch.scaled = scaled;
    pade_solve_full(scratch)?;
    // Bring the base to the deepest rung: e = e^{A/2^{s_max}}.
    for _ in 0..(s_total - s_max as u32) {
        s_square(scratch);
    }
    let mut lowest = s_max;
    for rung in (0..=s_max).rev() {
        let span = rung * n..(rung + 1) * n;
        for (k, o) in out[span.clone()].iter_mut().enumerate() {
            *o = scratch.e[(k, 0)];
        }
        lowest = rung;
        if !continue_up(rung, &out[span]) || rung == 0 {
            break;
        }
        s_square(scratch);
    }
    Ok(lowest)
}

/// The phi-1 function `φ₁(A) = A⁻¹(e^A − I)`, evaluated stably via an
/// augmented-matrix trick: `expm([[A, I], [0, 0]])` has `φ₁(A)` in its upper
/// right block. Useful for exponential integrators with constant inputs and
/// for validating the closed-form PWL update.
///
/// # Errors
///
/// Same as [`expm`].
pub fn phi1(a: &DMat) -> Result<DMat> {
    let n = a.nrows();
    if !a.is_square() {
        return Err(DenseError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let mut aug = DMat::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            aug[(i, j)] = a[(i, j)];
        }
        aug[(i, n + i)] = 1.0;
    }
    let e = expm(&aug)?;
    Ok(DMat::from_fn(n, n, |i, j| e[(i, n + j)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Taylor-series reference implementation (only valid for small norms).
    fn expm_taylor(a: &DMat, terms: usize) -> DMat {
        let n = a.nrows();
        let mut sum = DMat::identity(n);
        let mut term = DMat::identity(n);
        for k in 1..=terms {
            term = term.matmul(a).unwrap().scaled(1.0 / k as f64);
            sum = &sum + &term;
        }
        sum
    }

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&DMat::zeros(4, 4)).unwrap();
        assert!(e.max_abs_diff(&DMat::identity(4)) < 1e-15);
    }

    #[test]
    fn expm_diagonal() {
        let d = DMat::from_diag(&[1.0, -2.0, 0.5]);
        let e = expm(&d).unwrap();
        for (i, &v) in [1.0_f64, -2.0, 0.5].iter().enumerate() {
            assert!((e[(i, i)] - v.exp()).abs() < 1e-12 * v.exp().max(1.0));
        }
        assert!(e[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn expm_matches_taylor_small_norm() {
        let a = DMat::from_rows(&[&[0.01, 0.002], &[-0.003, 0.004]]);
        let e = expm(&a).unwrap();
        let t = expm_taylor(&a, 20);
        assert!(e.max_abs_diff(&t) < 1e-14);
    }

    #[test]
    fn expm_matches_taylor_medium_norm() {
        let a = DMat::from_rows(&[&[0.9, 0.3], &[-0.2, 0.5]]);
        let e = expm(&a).unwrap();
        let t = expm_taylor(&a, 40);
        assert!(e.max_abs_diff(&t) < 1e-12);
    }

    #[test]
    fn expm_large_norm_scaling_squaring() {
        // e^{[[0, w], [-w, 0]]} is a rotation by w.
        let w = 100.0;
        let a = DMat::from_rows(&[&[0.0, w], &[-w, 0.0]]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - w.cos()).abs() < 1e-9);
        assert!((e[(0, 1)] - w.sin()).abs() < 1e-9);
    }

    #[test]
    fn expm_group_property() {
        // e^{A} e^{A} = e^{2A}
        let a = DMat::from_rows(&[&[0.3, 0.1], &[0.0, -0.4]]);
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scaled(2.0)).unwrap();
        let sq = e1.matmul(&e1).unwrap();
        assert!(sq.max_abs_diff(&e2) < 1e-12);
    }

    #[test]
    fn expm_inverse_property() {
        // e^{A} e^{-A} = I
        let a = DMat::from_rows(&[&[1.2, -0.7], &[0.4, 0.9]]);
        let p = expm(&a)
            .unwrap()
            .matmul(&expm(&a.scaled(-1.0)).unwrap())
            .unwrap();
        assert!(p.max_abs_diff(&DMat::identity(2)) < 1e-10);
    }

    #[test]
    fn expm_stiff_decay_underflows_gracefully() {
        // Very stiff decay: entries underflow to ~0, no NaN.
        let a = DMat::from_diag(&[-1e6, -1.0]);
        let e = expm(&a).unwrap();
        assert!(e.is_finite());
        assert!(e[(0, 0)].abs() < 1e-200);
        // Squaring 2^s times amplifies rounding error by ~2^s; allow for it.
        assert!((e[(1, 1)] - (-1.0_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn expm_col0_matches_full() {
        let a = DMat::from_rows(&[&[0.2, 1.0, 0.0], &[0.3, -0.1, 0.5], &[0.0, 0.2, 0.1]]);
        let full = expm(&a).unwrap();
        let c = expm_col0(&a).unwrap();
        for i in 0..3 {
            assert_eq!(c[i], full[(i, 0)]);
        }
    }

    #[test]
    fn expm_col0_into_matches_wrapper_and_reuses_scratch() {
        // Low-norm (Padé 3/5/7/9), mid-norm (degree 13, no squaring) and
        // high-norm (squaring) inputs, interleaved through ONE scratch:
        // every call must match the one-shot wrapper bitwise.
        let cases = [
            DMat::from_rows(&[&[0.01, 0.002], &[-0.003, 0.004]]),
            DMat::from_rows(&[&[0.9, 0.3], &[-0.2, 0.5]]),
            DMat::from_rows(&[&[3.0, 1.0], &[0.5, -2.5]]),
            DMat::from_rows(&[&[0.0, 40.0], &[-40.0, 0.0]]),
            DMat::from_rows(&[&[0.2, 1.0, 0.0], &[0.3, -0.1, 0.5], &[0.0, 0.2, 0.1]]),
        ];
        let mut scratch = ExpmScratch::new();
        for a in &cases {
            let mut out = vec![0.0; a.nrows()];
            expm_col0_into(a, &mut scratch, &mut out).unwrap();
            let full = expm(a).unwrap().col(0);
            for (p, q) in out.iter().zip(&full) {
                assert_eq!(p.to_bits(), q.to_bits(), "norm {}", a.norm_one());
            }
        }
    }

    #[test]
    fn ladder_rungs_match_standalone_expm() {
        let a = DMat::from_rows(&[&[1.4, 0.8, 0.0], &[-0.3, 2.0, 0.5], &[0.1, -0.2, -1.0]]);
        let s_max = 5;
        let mut scratch = ExpmScratch::new();
        let mut out = vec![0.0; (s_max + 1) * 3];
        let mut seen = Vec::new();
        let lowest = expm_col0_ladder(&a, s_max, &mut scratch, &mut out, |s, _| {
            seen.push(s);
            true
        })
        .unwrap();
        assert_eq!(lowest, 0);
        assert_eq!(seen, vec![5, 4, 3, 2, 1, 0]);
        for s in 0..=s_max {
            let reference = expm(&a.scaled(0.5_f64.powi(s as i32))).unwrap().col(0);
            for (p, q) in out[s * 3..(s + 1) * 3].iter().zip(&reference) {
                assert!((p - q).abs() < 1e-12, "rung {s}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn ladder_early_stop_leaves_shallow_rungs_untouched() {
        let a = DMat::from_diag(&[-2.0, 0.5]);
        let s_max = 4;
        let mut scratch = ExpmScratch::new();
        let mut out = vec![f64::NAN; (s_max + 1) * 2];
        let lowest = expm_col0_ladder(&a, s_max, &mut scratch, &mut out, |s, _| s > 2).unwrap();
        // Stopped after recording rung 2 (whose callback returned false).
        assert_eq!(lowest, 2);
        assert!(out[2 * 2..].iter().all(|v| v.is_finite()));
        assert!(out[..2 * 2].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn phi1_of_zero_is_identity() {
        // φ₁(0) = I
        let p = phi1(&DMat::zeros(3, 3)).unwrap();
        assert!(p.max_abs_diff(&DMat::identity(3)) < 1e-14);
    }

    #[test]
    fn phi1_satisfies_definition() {
        // A φ₁(A) = e^A − I
        let a = DMat::from_rows(&[&[0.5, 0.2], &[-0.1, 0.8]]);
        let p = phi1(&a).unwrap();
        let lhs = a.matmul(&p).unwrap();
        let rhs = &expm(&a).unwrap() - &DMat::identity(2);
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn expm_rejects_rectangular() {
        assert!(matches!(
            expm(&DMat::zeros(2, 3)),
            Err(DenseError::NotSquare { .. })
        ));
    }

    #[test]
    fn expm_rejects_nan() {
        let mut a = DMat::zeros(2, 2);
        a[(0, 0)] = f64::INFINITY;
        assert!(matches!(expm(&a), Err(DenseError::NotFinite)));
    }
}
