//! Dense LU factorization with partial pivoting.

use crate::{DMat, DenseError, Result};

/// LU factorization `P A = L U` of a square dense matrix, with partial
/// (row) pivoting.
///
/// Used by MATEX to invert and solve with the small Hessenberg matrices of
/// the inverted (`Hm = Ĥ⁻¹`) and rational (`Hm = (I − Ĥ⁻¹)/γ`) Krylov
/// variants, and inside the Padé matrix-exponential evaluation.
///
/// # Example
///
/// ```
/// use matex_dense::{DMat, DenseLu};
///
/// # fn main() -> Result<(), matex_dense::DenseError> {
/// let a = DMat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = DenseLu::factor(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed LU factors: strictly-lower part stores L (unit diagonal
    /// implied), upper triangle stores U.
    lu: DMat,
    /// Row permutation: step k swapped rows k and `piv[k]`.
    piv: Vec<usize>,
    /// Sign of the permutation (±1), for determinants.
    sign: f64,
}

impl DenseLu {
    /// Factorizes `a` as `P A = L U`.
    ///
    /// # Errors
    ///
    /// * [`DenseError::NotSquare`] when `a` is rectangular.
    /// * [`DenseError::NotFinite`] when `a` contains NaN/inf.
    /// * [`DenseError::SingularPivot`] when a pivot is exactly zero
    ///   (numerically tiny pivots are kept: callers such as `expm` rely on
    ///   solving with very ill-conditioned matrices).
    pub fn factor(a: &DMat) -> Result<Self> {
        if !a.is_square() {
            return Err(DenseError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        if !a.is_finite() {
            return Err(DenseError::NotFinite);
        }
        let mut lu = a.clone();
        let mut piv = Vec::with_capacity(a.nrows());
        let sign = factor_core(&mut lu, &mut piv)?;
        Ok(DenseLu { lu, piv, sign })
    }

    /// Re-factorizes `a` in place, reusing this factorization's storage:
    /// zero heap allocations when the dimension is unchanged. The factors
    /// are bit-for-bit what [`DenseLu::factor`] produces.
    ///
    /// # Errors
    ///
    /// As [`DenseLu::factor`]. On error this factorization is left in an
    /// unusable state — callers must not solve with it until a later
    /// `refactor` succeeds.
    pub fn refactor(&mut self, a: &DMat) -> Result<()> {
        if !a.is_square() {
            return Err(DenseError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        if !a.is_finite() {
            return Err(DenseError::NotFinite);
        }
        if self.lu.nrows() == a.nrows() {
            self.lu.copy_from(a);
        } else {
            self.lu = a.clone();
        }
        self.piv.clear();
        self.sign = factor_core(&mut self.lu, &mut self.piv)?;
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::ShapeMismatch`] when `b.len()` differs from the
    /// factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(DenseError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        Ok(x)
    }

    /// Solves `A x = b` in place (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factored dimension.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "solve_in_place: length mismatch");
        // Apply P.
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward: L y = P b (unit lower).
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::ShapeMismatch`] when `B.nrows()` differs from
    /// the factored dimension.
    pub fn solve_mat(&self, b: &DMat) -> Result<DMat> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(DenseError::ShapeMismatch {
                left: (n, n),
                right: (b.nrows(), b.ncols()),
            });
        }
        let mut x = DMat::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let mut col = b.col(j);
            self.solve_in_place(&mut col);
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// The inverse matrix `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`DenseLu::solve_mat`]; cannot fail for
    /// a successfully factored matrix.
    pub fn inverse(&self) -> Result<DMat> {
        self.solve_mat(&DMat::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Magnitude of the smallest pivot — a cheap singularity indicator.
    pub fn min_pivot(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lu[(i, i)].abs())
            .fold(f64::INFINITY, f64::min)
    }
}

/// The Gilbert-style right-looking elimination shared by
/// [`DenseLu::factor`] and [`DenseLu::refactor`]: factors `lu` in place,
/// fills `piv`, and returns the permutation sign.
fn factor_core(lu: &mut DMat, piv: &mut Vec<usize>) -> Result<f64> {
    let n = lu.nrows();
    let mut sign = 1.0;
    for k in 0..n {
        // Partial pivoting: pick the largest magnitude entry in column k.
        let mut p = k;
        let mut best = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        piv.push(p);
        if p != k {
            lu.swap_rows(p, k);
            sign = -sign;
        }
        let pivot = lu[(k, k)];
        if pivot == 0.0 {
            return Err(DenseError::SingularPivot { column: k });
        }
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            if m != 0.0 {
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
    }
    Ok(sign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm_inf;

    fn residual(a: &DMat, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        norm_inf(&ax.iter().zip(b).map(|(p, q)| p - q).collect::<Vec<_>>())
    }

    #[test]
    fn solve_3x3() {
        let a = DMat::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let b = [4.0, 5.0, 6.0];
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_errors() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(DenseError::SingularPivot { column: 1 })
        ));
    }

    #[test]
    fn rectangular_errors() {
        let a = DMat::zeros(2, 3);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(DenseError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn non_finite_errors() {
        let mut a = DMat::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(DenseLu::factor(&a), Err(DenseError::NotFinite)));
    }

    #[test]
    fn det_of_permutation_like() {
        // det([[0,1],[1,0]]) = -1
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn det_of_diag() {
        let a = DMat::from_diag(&[2.0, 3.0, 4.0]);
        assert!((DenseLu::factor(&a).unwrap().det() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DMat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = DenseLu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DMat::identity(2)) < 1e-12);
    }

    #[test]
    fn solve_mat_matches_columnwise_solve() {
        let a = DMat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve_mat(&b).unwrap();
        let c0 = lu.solve(&b.col(0)).unwrap();
        assert_eq!(x.col(0), c0);
    }

    #[test]
    fn refactor_matches_factor_bitwise() {
        let a = DMat::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let b = DMat::from_rows(&[&[0.0, 1.0, -4.0], &[7.0, 0.5, 2.0], &[1.0, 1.0, 1.0]]);
        let mut lu = DenseLu::factor(&a).unwrap();
        lu.refactor(&b).unwrap();
        let fresh = DenseLu::factor(&b).unwrap();
        assert_eq!(lu.piv, fresh.piv);
        assert_eq!(lu.sign, fresh.sign);
        for (p, q) in lu.lu.as_slice().iter().zip(fresh.lu.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Dimension change falls back to fresh storage.
        let c = DMat::from_diag(&[2.0, 3.0]);
        lu.refactor(&c).unwrap();
        let x = lu.solve(&[2.0, 6.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn solve_wrong_len_errors() {
        let lu = DenseLu::factor(&DMat::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
