use std::fmt;

/// Errors produced by dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DenseError {
    /// Two operands had incompatible shapes. The payload carries the two
    /// offending `(rows, cols)` pairs.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// An operation required a square matrix but received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorization hit an exactly (or numerically) zero pivot.
    SingularPivot {
        /// Column at which the zero pivot was encountered.
        column: usize,
    },
    /// An iterative eigenvalue computation failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An input contained a NaN or infinity.
    NotFinite,
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            DenseError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            DenseError::SingularPivot { column } => {
                write!(f, "singular pivot encountered at column {column}")
            }
            DenseError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} steps")
            }
            DenseError::NotFinite => write!(f, "input contains a NaN or infinite value"),
        }
    }
}

impl std::error::Error for DenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DenseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch: 2x3 vs 4x5");
        let e = DenseError::SingularPivot { column: 7 };
        assert!(e.to_string().contains("column 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DenseError>();
    }
}
