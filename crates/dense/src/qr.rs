//! Householder QR factorization.

use crate::{DMat, DenseError, Result};

/// Householder QR factorization `A = Q R` of an `m × n` matrix with
/// `m >= n`.
///
/// Used for least-squares diagnostics and for verifying the orthonormality
/// of Arnoldi bases in tests. `Q` is kept in factored (Householder-vector)
/// form.
///
/// # Example
///
/// ```
/// use matex_dense::{DMat, DenseQr};
///
/// # fn main() -> Result<(), matex_dense::DenseError> {
/// let a = DMat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = DenseQr::factor(&a)?;
/// // Least-squares fit of y = 1 + 2x through (0,1), (1,3), (2,5): exact.
/// let c = qr.solve_ls(&[1.0, 3.0, 5.0])?;
/// assert!((c[0] - 1.0).abs() < 1e-12 && (c[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseQr {
    /// Packed factors: R in the upper triangle, Householder vectors below
    /// the diagonal (with implicit unit leading entry).
    qr: DMat,
    /// Householder coefficients β_k.
    beta: Vec<f64>,
}

impl DenseQr {
    /// Factorizes `a` (requires `nrows >= ncols`).
    ///
    /// # Errors
    ///
    /// * [`DenseError::ShapeMismatch`] when `nrows < ncols`.
    /// * [`DenseError::NotFinite`] when `a` contains NaN/inf.
    pub fn factor(a: &DMat) -> Result<Self> {
        let (m, n) = (a.nrows(), a.ncols());
        if m < n {
            return Err(DenseError::ShapeMismatch {
                left: (m, n),
                right: (n, n),
            });
        }
        if !a.is_finite() {
            return Err(DenseError::NotFinite);
        }
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];
        for k in 0..n {
            // Build Householder vector for column k below row k.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, qr[k+1.., k]); normalize so v[0] = 1.
            let mut vnorm2 = v0 * v0;
            for i in (k + 1)..m {
                vnorm2 += qr[(i, k)] * qr[(i, k)];
            }
            if vnorm2 == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            beta[k] = 2.0 * v0 * v0 / vnorm2;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = alpha;
            // Apply reflector to remaining columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(DenseQr { qr, beta })
    }

    /// Applies `Qᵀ` to a vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn apply_qt(&self, x: &mut [f64]) {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        assert_eq!(x.len(), m, "apply_qt: length mismatch");
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            let mut s = x[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * x[i];
            }
            s *= self.beta[k];
            x[k] -= s;
            for i in (k + 1)..m {
                x[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`DenseError::ShapeMismatch`] when `b.len() != nrows`.
    /// * [`DenseError::SingularPivot`] when `R` has a zero diagonal entry
    ///   (rank-deficient `A`).
    pub fn solve_ls(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.nrows(), self.qr.ncols());
        if b.len() != m {
            return Err(DenseError::ShapeMismatch {
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R; treat numerically negligible diagonal
        // entries (relative to the largest) as rank deficiency.
        let rmax = (0..n)
            .map(|i| self.qr[(i, i)].abs())
            .fold(0.0_f64, f64::max);
        let tiny = f64::EPSILON * rmax * n as f64;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() <= tiny {
                return Err(DenseError::SingularPivot { column: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> DMat {
        let n = self.qr.ncols();
        DMat::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_via_least_squares_of_square() {
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let qr = DenseQr::factor(&a).unwrap();
        let x = qr.solve_ls(&[5.0, 10.0]).unwrap();
        // Exact solve for square nonsingular systems.
        let b = a.matvec(&x);
        assert!((b[0] - 5.0).abs() < 1e-12 && (b[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular_with_correct_norms() {
        let a = DMat::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let qr = DenseQr::factor(&a).unwrap();
        let r = qr.r();
        assert_eq!(r[(1, 0)], 0.0);
        // |R[0,0]| = norm of first column of A = sqrt(2).
        assert!((r[(0, 0)].abs() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn qt_preserves_norm() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = DenseQr::factor(&a).unwrap();
        let mut x = vec![1.0, -2.0, 0.5];
        let before = crate::norm2(&x);
        qr.apply_qt(&mut x);
        assert!((crate::norm2(&x) - before).abs() < 1e-12);
    }

    #[test]
    fn underdetermined_rejected() {
        let a = DMat::zeros(2, 3);
        assert!(DenseQr::factor(&a).is_err());
    }

    #[test]
    fn rank_deficient_solve_errors() {
        let a = DMat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let qr = DenseQr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_ls(&[1.0, 2.0, 3.0]),
            Err(DenseError::SingularPivot { .. })
        ));
    }
}
