//! Property-based tests of the dense kernels: LU/QR identities, `expm`
//! group laws, and eigenvalue invariants on random matrices.

use matex_dense::eig::{eig_vals, sym_eig};
use matex_dense::{expm, DMat, DenseLu, DenseQr};
use proptest::prelude::*;

/// Random well-conditioned matrix: diagonally dominant with bounded
/// off-diagonal mass.
fn dd(n: usize, vals: &[f64]) -> DMat {
    DMat::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + 1.0 + vals[(i * 31 + 7) % vals.len()].abs()
        } else {
            vals[(i * 17 + j * 5) % vals.len()] / (n as f64)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_reconstructs_solution(
        n in 1usize..12,
        vals in prop::collection::vec(-3.0..3.0_f64, 8),
    ) {
        let a = dd(n, &vals);
        let lu = DenseLu::factor(&a).expect("dd factors");
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let b = a.matvec(&x_true);
        let x = lu.solve(&b).expect("solves");
        for (p, q) in x.iter().zip(&x_true) {
            prop_assert!((p - q).abs() < 1e-9);
        }
        // det(A) * det(A^{-1}) == 1
        let inv = lu.inverse().expect("invertible");
        let det_inv = DenseLu::factor(&inv).expect("factors").det();
        prop_assert!((lu.det() * det_inv - 1.0).abs() < 1e-6);
    }

    #[test]
    fn expm_group_law(
        n in 1usize..7,
        vals in prop::collection::vec(-0.5..0.5_f64, 8),
        s in 0.1..2.0_f64,
    ) {
        // e^{sA} e^{sA} == e^{2sA}
        let a = DMat::from_fn(n, n, |i, j| vals[(i * 7 + j * 3) % vals.len()] * 0.3
            - if i == j { 0.5 } else { 0.0 });
        let e1 = expm(&a.scaled(s)).expect("expm ok");
        let e2 = expm(&a.scaled(2.0 * s)).expect("expm ok");
        let sq = e1.matmul(&e1).expect("square");
        prop_assert!(sq.max_abs_diff(&e2) < 1e-9 * e2.norm_inf().max(1.0));
    }

    #[test]
    fn expm_commutes_with_transpose(
        n in 1usize..7,
        vals in prop::collection::vec(-0.5..0.5_f64, 8),
    ) {
        // (e^{A})^T == e^{A^T}
        let a = DMat::from_fn(n, n, |i, j| vals[(i * 5 + j) % vals.len()]);
        let lhs = expm(&a).expect("ok").transpose();
        let rhs = expm(&a.transpose()).expect("ok");
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10 * rhs.norm_inf().max(1.0));
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        m in 3usize..10,
        vals in prop::collection::vec(-2.0..2.0_f64, 12),
    ) {
        // Residual of LS solution is orthogonal to the column space.
        let n = 2usize;
        let a = DMat::from_fn(m, n, |i, j| vals[(i * 3 + j) % vals.len()] + if j == 0 { 3.0 } else { 0.0 });
        let b: Vec<f64> = (0..m).map(|i| vals[(i * 7) % vals.len()]).collect();
        let qr = DenseQr::factor(&a).expect("factors");
        match qr.solve_ls(&b) {
            Ok(x) => {
                let ax = a.matvec(&x);
                let resid: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
                let atr = a.matvec_t(&resid);
                for v in atr {
                    prop_assert!(v.abs() < 1e-8, "residual not orthogonal: {v}");
                }
            }
            Err(_) => {
                // Rank-deficient random draw: acceptable outcome.
            }
        }
    }

    #[test]
    fn sym_eig_reconstructs(
        n in 1usize..8,
        vals in prop::collection::vec(-2.0..2.0_f64, 10),
    ) {
        // Symmetric matrix: A == V diag(w) V^T, eigenvalues sum to trace.
        let a = DMat::from_fn(n, n, |i, j| {
            let (lo, hi) = (i.min(j), i.max(j));
            vals[(lo * 7 + hi * 3) % vals.len()]
        });
        let (w, v) = sym_eig(&a).expect("symmetric eig");
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum_w: f64 = w.iter().sum();
        prop_assert!((trace - sum_w).abs() < 1e-8 * trace.abs().max(1.0));
        // Reconstruct.
        let mut rec = DMat::zeros(n, n);
        for (k, &wk) in w.iter().enumerate() {
            let col = v.col(k);
            for i in 0..n {
                for j in 0..n {
                    rec[(i, j)] += wk * col[i] * col[j];
                }
            }
        }
        prop_assert!(rec.max_abs_diff(&a) < 1e-8 * a.norm_inf().max(1.0));
    }

    #[test]
    fn general_eig_trace_and_det_invariants(
        n in 1usize..7,
        vals in prop::collection::vec(-2.0..2.0_f64, 10),
    ) {
        let a = dd(n, &vals);
        let eigs = eig_vals(&a).expect("converges");
        prop_assert_eq!(eigs.len(), n);
        // Sum of eigenvalues == trace (imaginary parts cancel).
        let re_sum: f64 = eigs.iter().map(|e| e.0).sum();
        let im_sum: f64 = eigs.iter().map(|e| e.1).sum();
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        prop_assert!((re_sum - trace).abs() < 1e-6 * trace.abs().max(1.0));
        prop_assert!(im_sum.abs() < 1e-6);
        // Product == det.
        let (mut re, mut im) = (1.0_f64, 0.0_f64);
        for (er, ei) in &eigs {
            let (nr, ni) = (re * er - im * ei, re * ei + im * er);
            re = nr;
            im = ni;
        }
        let det = DenseLu::factor(&a).expect("factors").det();
        prop_assert!((re - det).abs() < 1e-5 * det.abs().max(1.0));
        prop_assert!(im.abs() < 1e-5 * det.abs().max(1.0));
    }
}
