//! The two exporters: Prometheus-style text exposition and the
//! Chrome-trace JSON timeline, plus a line-format linter the tests (and
//! CI) run against every emitted page.
//!
//! Export order is deterministic: metrics render from ordered maps, so
//! the same recorded values always produce the same bytes (modulo the
//! measured numbers themselves).

use crate::hist::{bucket_upper_ns, HistSnapshot};
use crate::Recorder;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Every exported metric name carries this prefix on the page.
pub(crate) const PREFIX: &str = "matex_";

/// Renders the Prometheus text page: counters, gauges, then histograms,
/// each name introduced by a `# TYPE` line.
pub(crate) fn prometheus_text(rec: &Recorder) -> String {
    let mut out = String::new();
    let counters = rec.counters.lock().expect("obs counters").clone();
    render_scalars(&mut out, &counters, "counter", |v| v.to_string());
    let gauges = rec.gauges.lock().expect("obs gauges").clone();
    render_scalars(&mut out, &gauges, "gauge", |v| v.to_string());

    let hists: Vec<((&'static str, String), HistSnapshot)> = {
        let h = rec.hists.lock().expect("obs hists");
        h.iter()
            .map(|(k, hist)| (k.clone(), hist.snapshot()))
            .collect()
    };
    let mut last_name = "";
    for ((name, labels), snap) in &hists {
        if *name != last_name {
            let _ = writeln!(out, "# TYPE {PREFIX}{name} histogram");
            last_name = name;
        }
        let mut cumulative = 0u64;
        for (i, &c) in snap.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = fmt_f64(bucket_upper_ns(i) as f64 / 1e9);
            let _ = writeln!(
                out,
                "{PREFIX}{name}_bucket{{{}le=\"{le}\"}} {cumulative}",
                join_labels(labels),
            );
        }
        let _ = writeln!(
            out,
            "{PREFIX}{name}_bucket{{{}le=\"+Inf\"}} {}",
            join_labels(labels),
            snap.count(),
        );
        let _ = writeln!(
            out,
            "{PREFIX}{name}_sum{} {}",
            braced(labels),
            fmt_f64(snap.sum_seconds()),
        );
        let _ = writeln!(
            out,
            "{PREFIX}{name}_count{} {}",
            braced(labels),
            snap.count()
        );
    }
    out
}

fn render_scalars<V: Copy>(
    out: &mut String,
    map: &BTreeMap<(&'static str, String), V>,
    kind: &str,
    fmt: impl Fn(V) -> String,
) {
    let mut last_name = "";
    for ((name, labels), v) in map {
        if *name != last_name {
            let _ = writeln!(out, "# TYPE {PREFIX}{name} {kind}");
            last_name = name;
        }
        let _ = writeln!(out, "{PREFIX}{name}{} {}", braced(labels), fmt(*v));
    }
}

/// `{labels}` or nothing when the label set is empty.
fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// The label fragment with a trailing comma, for splicing before `le=`.
fn join_labels(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Finite f64 in plain decimal (Rust's shortest round-trip `Display`
/// never emits scientific notation, which keeps the page trivially
/// parseable).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Renders the trace-event array: one Chrome `"ph": "X"` complete event
/// per recorded span, timestamps in microseconds since the recorder
/// epoch.
pub(crate) fn chrome_trace_events(rec: &Recorder) -> String {
    let spans = rec.spans.lock().expect("obs spans").clone();
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"matex\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"job\":{}",
            escape_json(s.site),
            fmt_f64(s.start_ns as f64 / 1e3),
            fmt_f64(s.dur_ns as f64 / 1e3),
            s.tid,
            s.job,
        );
        for (k, v) in &s.labels {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lints a Prometheus text page: every line must be a well-formed
/// comment, `# TYPE` declaration, or `name{labels} value` sample, and
/// every histogram must expose non-decreasing cumulative buckets ending
/// at `le="+Inf"` with a matching `_count`.
///
/// # Errors
///
/// Returns `Err` naming the first offending line.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    // (histogram base name, labels-without-le) -> cumulative bucket
    // counts in page order, the +Inf value, and the _count value.
    let mut buckets: BTreeMap<(String, String), Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if !comment.starts_with(' ') {
                return Err(format!("line {n}: comment must start with '# ': {line:?}"));
            }
            if let Some(decl) = comment.strip_prefix(" TYPE ") {
                let mut parts = decl.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !is_metric_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    )
                    || parts.next().is_some()
                {
                    return Err(format!("line {n}: malformed TYPE declaration: {line:?}"));
                }
            }
            continue;
        }
        let (name, labels, value) = parse_sample(line)
            .ok_or_else(|| format!("line {n}: malformed sample line: {line:?}"))?;
        if let Some(base) = name.strip_suffix("_bucket") {
            let mut le = None;
            let mut rest = Vec::new();
            for (k, v) in &labels {
                if k == "le" {
                    le = Some(v.clone());
                } else {
                    rest.push(format!("{k}={v}"));
                }
            }
            let le = le.ok_or_else(|| format!("line {n}: bucket sample without le label"))?;
            buckets
                .entry((base.to_string(), rest.join(",")))
                .or_default()
                .push((le, value));
        } else if let Some(base) = name.strip_suffix("_count") {
            let rest: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert((base.to_string(), rest.join(",")), value);
        }
    }

    for ((base, labels), series) in &buckets {
        let mut prev = f64::NEG_INFINITY;
        for (le, v) in series {
            if *v < prev {
                return Err(format!(
                    "histogram {base}{{{labels}}}: bucket le={le} decreases ({v} < {prev})"
                ));
            }
            prev = *v;
        }
        let (last_le, last_v) = series.last().expect("non-empty series");
        if last_le != "+Inf" {
            return Err(format!(
                "histogram {base}{{{labels}}}: last bucket is le={last_le}, not +Inf"
            ));
        }
        match counts.get(&(base.clone(), labels.clone())) {
            Some(c) if c == last_v => {}
            Some(c) => {
                return Err(format!(
                    "histogram {base}{{{labels}}}: _count {c} != +Inf bucket {last_v}"
                ))
            }
            None => {
                return Err(format!(
                    "histogram {base}{{{labels}}}: missing _count sample"
                ));
            }
        }
    }
    Ok(())
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed exposition sample: name, label pairs (values unescaped),
/// and the numeric value.
type Sample = (String, Vec<(String, String)>, f64);

/// Parses `name{k="v",...} value` (labels optional).
fn parse_sample(line: &str) -> Option<Sample> {
    let (name_part, rest) = match line.find('{') {
        Some(at) => (&line[..at], &line[at..]),
        None => {
            let sp = line.find(' ')?;
            (&line[..sp], &line[sp..])
        }
    };
    if !is_metric_name(name_part) {
        return None;
    }
    let mut labels = Vec::new();
    let mut rest = rest;
    if let Some(body) = rest.strip_prefix('{') {
        let mut chars = body.char_indices().peekable();
        loop {
            // key
            let start = chars.peek()?.0;
            let mut key_end = start;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    key_end = i;
                    break;
                }
            }
            let key = &body[start..key_end];
            if !is_metric_name(key) {
                return None;
            }
            // value: opening quote
            let (_, q) = chars.next()?;
            if q != '"' {
                return None;
            }
            let mut value = String::new();
            loop {
                let (_, c) = chars.next()?;
                match c {
                    '\\' => {
                        let (_, esc) = chars.next()?;
                        value.push(match esc {
                            'n' => '\n',
                            c => c,
                        });
                    }
                    '"' => break,
                    c => value.push(c),
                }
            }
            labels.push((key.to_string(), value));
            match chars.next()? {
                (_, ',') => continue,
                (end, '}') => {
                    rest = &body[end + 1..];
                    break;
                }
                _ => return None,
            }
        }
    }
    let value_str = rest.strip_prefix(' ')?;
    if value_str.contains(' ') {
        return None;
    }
    let value = if value_str == "+Inf" {
        f64::INFINITY
    } else {
        value_str.parse().ok()?
    };
    Some((name_part.to_string(), labels, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;
    use std::time::Duration;

    /// The satellite-5 lint: a fully populated page — counters with and
    /// without labels, gauges, multi-label-set histograms — passes the
    /// line-format lint.
    #[test]
    fn emitted_page_passes_the_lint() {
        let obs = Obs::enabled();
        obs.add("engine_submitted_total", 3);
        obs.add_labeled("engine_jobs_total", &[("hit", "warm")], 2);
        obs.add_labeled("engine_jobs_total", &[("hit", "cold")], 1);
        obs.add_labeled(
            "engine_jobs_total",
            &[("hit", "a\"b\\c"), ("mode", "dist")],
            1,
        );
        obs.gauge("engine_queue_depth", 4);
        for ns in [100u64, 1_000, 10_000, 1_000_000, 50_000_000] {
            obs.observe_labeled(
                "engine_job_seconds",
                &[("hit", "warm")],
                Duration::from_nanos(ns),
            );
            obs.observe_labeled(
                "engine_job_seconds",
                &[("hit", "cold")],
                Duration::from_nanos(3 * ns),
            );
        }
        obs.observe("store_read_seconds", Duration::from_micros(120));
        let page = obs.prometheus_text();
        lint_prometheus(&page).expect("page lints clean");
        assert!(page.contains("# TYPE matex_engine_job_seconds histogram"));
        assert!(page.contains("matex_engine_job_seconds_count{hit=\"warm\"} 5"));
        assert!(page.contains("le=\"+Inf\""));
    }

    #[test]
    fn disabled_page_is_lint_clean() {
        lint_prometheus(&Obs::default().prometheus_text()).expect("comment-only page lints");
    }

    #[test]
    fn lint_rejects_malformed_pages() {
        assert!(lint_prometheus("metric value\n").is_err()); // non-numeric
        assert!(lint_prometheus("9metric 1\n").is_err()); // bad name
        assert!(lint_prometheus("#comment without space\n").is_err());
        assert!(lint_prometheus("m{k=\"v\" 1\n").is_err()); // unclosed braces
                                                            // Decreasing cumulative buckets.
        let bad = "m_bucket{le=\"0.1\"} 5\nm_bucket{le=\"+Inf\"} 3\nm_count 3\n";
        assert!(lint_prometheus(bad).is_err());
        // Missing +Inf terminal bucket.
        let bad = "m_bucket{le=\"0.1\"} 5\nm_count 5\n";
        assert!(lint_prometheus(bad).is_err());
        // _count disagreeing with +Inf.
        let bad = "m_bucket{le=\"+Inf\"} 5\nm_count 4\n";
        assert!(lint_prometheus(bad).is_err());
    }

    #[test]
    fn trace_events_are_valid_json_shape() {
        let obs = Obs::enabled();
        {
            let mut s = obs.span_for("solver.expm", 3);
            s.label("step", "7");
        }
        let events = obs.chrome_trace_events();
        assert!(events.starts_with('[') && events.ends_with(']'));
        // Balanced braces (no raw braces appear in our escaped strings).
        let opens = events.matches('{').count();
        let closes = events.matches('}').count();
        assert_eq!(opens, closes);
        assert!(events.contains("\"ph\":\"X\""));
        assert!(events.contains("\"cat\":\"matex\""));
        let json = obs.chrome_trace_json();
        assert!(json.contains("\"traceEvents\":["));
    }
}
