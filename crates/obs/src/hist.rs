//! Fixed-bucket log-linear latency histograms.
//!
//! Bucket boundaries are a pure function of the scheme constants — no
//! configuration, no floating-point accumulation — so two histograms
//! built anywhere in the process (or on different threads, or merged in
//! any order) agree bucket-for-bucket, and tests can pin exact quantile
//! outputs.
//!
//! The scheme is log-linear over nanoseconds: values below
//! 2^[`SUB_BITS`] get one bucket each, and every power-of-two range
//! above that is split into 2^[`SUB_BITS`] equal sub-buckets. With
//! `SUB_BITS = 3` the relative quantization error is bounded by 12.5%,
//! which is tighter than the run-to-run noise of anything worth a
//! histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave.
pub const SUB_BITS: u32 = 3;

/// Total bucket count of the scheme (values up to `u64::MAX` ns).
pub const NUM_BUCKETS: usize = 8 + (64 - SUB_BITS as usize) * 8;

/// The bucket a nanosecond value falls into.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns < (1 << SUB_BITS) {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let offset = ((ns >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    (1 << SUB_BITS) + ((msb - SUB_BITS) as usize) * 8 + offset
}

/// Inclusive upper bound (in nanoseconds) of bucket `i`.
///
/// # Panics
///
/// Panics when `i >= NUM_BUCKETS`.
pub fn bucket_upper_ns(i: usize) -> u64 {
    assert!(i < NUM_BUCKETS, "bucket {i} out of range");
    if i < (1 << SUB_BITS) {
        return i as u64;
    }
    let exp = ((i - 8) / 8) as u32 + SUB_BITS;
    let off = ((i - 8) % 8) as u64;
    // The top sub-bucket of the top octave ends exactly at u64::MAX
    // (its exclusive edge, 2^64, does not fit in u64).
    let base = 1u64 << exp;
    match base.checked_add((off + 1) << (exp - SUB_BITS)) {
        Some(edge) => edge - 1,
        None => u64::MAX,
    }
}

/// A thread-safe histogram: lock-free recording into fixed atomic
/// buckets. Cheap to share behind an `Arc`; snapshot to query.
#[derive(Debug)]
pub struct Hist {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observation of a [`std::time::Duration`].
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy for querying and merging.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable histogram snapshot.
///
/// Merging is element-wise addition over identical deterministic
/// buckets, so it is commutative and associative: merging per-thread
/// histograms in **any order** yields identical buckets and quantiles
/// (pinned by the crate's property test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::new()
    }
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistSnapshot {
        HistSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Records into the snapshot directly (single-thread use, e.g. a
    /// load-generator client thread).
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Records one [`std::time::Duration`].
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Element-wise merge of another snapshot into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile (0 < q ≤ 1) in **seconds**: the inclusive upper
    /// bound of the bucket where the cumulative count first reaches
    /// `ceil(q · count)`. Returns 0.0 for an empty histogram. Exact and
    /// deterministic: the same observations always produce the same
    /// bits.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(i) as f64 / 1e9;
            }
        }
        bucket_upper_ns(NUM_BUCKETS - 1) as f64 / 1e9
    }

    /// Convenience: (p50, p90, p99) in seconds.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_exhaustive() {
        // Every value maps to exactly one bucket whose bound brackets it.
        for &v in &[0u64, 1, 7, 8, 9, 63, 64, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_ns(i), "v={v} i={i}");
            if i > 0 {
                assert!(bucket_upper_ns(i - 1) < v, "v={v} i={i}");
            }
        }
        // Bounds strictly increase.
        for i in 1..NUM_BUCKETS {
            assert!(bucket_upper_ns(i) > bucket_upper_ns(i - 1), "i={i}");
        }
    }

    #[test]
    fn quantiles_are_pinned() {
        // 1000 ns lands in the bucket with inclusive upper bound 1023 ns
        // (msb 9, sub-bucket 7): quantization is deterministic, so the
        // quantile output is an exact, pinnable f64.
        let mut h = HistSnapshot::new();
        for _ in 0..10 {
            h.record_ns(1000);
        }
        assert_eq!(h.quantile(0.5), 1023.0 / 1e9);
        assert_eq!(h.quantile(0.99), 1023.0 / 1e9);

        // A two-mode population: p50 from the fast mode, p99 from the
        // slow one.
        let mut h = HistSnapshot::new();
        for _ in 0..90 {
            h.record_ns(1_000); // ≤ 1023
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // ≤ 1048575
        }
        assert_eq!(h.quantile(0.50), 1023.0 / 1e9);
        assert_eq!(h.quantile(0.90), 1023.0 / 1e9);
        assert_eq!(h.quantile(0.99), 1_048_575.0 / 1e9);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn atomic_and_snapshot_recording_agree() {
        let a = Hist::new();
        let mut b = HistSnapshot::new();
        for v in [0u64, 5, 8, 100, 12_345, 7_777_777] {
            a.record_ns(v);
            b.record_ns(v);
        }
        assert_eq!(a.snapshot(), b);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = HistSnapshot::new();
        assert_eq!(h.percentiles(), (0.0, 0.0, 0.0));
        assert_eq!(h.count(), 0);
    }
}
