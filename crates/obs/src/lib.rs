//! Observability substrate for the MATEX stack: typed spans over
//! monotonic clocks, counters, gauges, and mergeable log-linear latency
//! histograms, exported as a Prometheus-style text page and a
//! Chrome-trace (`chrome://tracing` / Perfetto) JSON timeline.
//!
//! The paper's whole argument is a cost decomposition — factorization
//! vs Krylov subspace generation (`T_H`) vs evaluation (`T_e`, Sec.
//! 3.4) — and this crate makes that split a first-class, queryable
//! signal at every layer: solver stage spans, per-node distribution
//! spans, engine queue-wait vs run spans with cache hit-path labels,
//! store I/O timing, and service-side frame-flush latency.
//!
//! # Design rules
//!
//! * **Disabled is free.** An [`Obs`] handle is an `Option<Arc>` — the
//!   default handle is disarmed and every event costs exactly one
//!   branch, allocates nothing, and never touches a clock. The solver
//!   hot paths are proven allocation-free under a disabled handle by
//!   the counting-allocator harness in `matex-core`.
//! * **Numerics are untouchable.** Instrumentation observes times and
//!   counts; it never participates in a computation. Enabled and
//!   disabled runs produce bitwise-identical waveforms.
//! * **Deterministic aggregation.** Histogram buckets are a pure
//!   function of the scheme constants ([`hist::bucket_upper_ns`]), and
//!   merging is element-wise addition — commutative and associative —
//!   so per-thread histograms merge to identical quantiles in any
//!   order, and tests pin exact outputs.
//! * **Lock-light.** Histograms record through atomics; counters,
//!   gauges, and completed spans take one short registry lock each —
//!   on job-grained paths only, never inside numeric kernels.
//!
//! # Example
//!
//! ```
//! use matex_obs::Obs;
//! use std::time::Duration;
//!
//! let obs = Obs::enabled();
//! {
//!     let mut span = matex_obs::span!(obs, "engine.run", 7);
//!     span.label("hit", "warm");
//!     // ... the traced work ...
//! } // span records on drop
//! obs.add("engine_completed_total", 1);
//! obs.observe("engine_job_seconds", Duration::from_millis(3));
//!
//! let page = obs.prometheus_text();
//! assert!(page.contains("matex_engine_completed_total 1"));
//! let trace = obs.chrome_trace_json();
//! assert!(trace.contains("\"engine.run\""));
//!
//! // The default handle is disarmed: every call is a no-op branch.
//! let off = Obs::default();
//! assert!(!off.is_enabled());
//! off.add("never_recorded_total", 1);
//! ```

mod export;
pub mod hist;

pub use export::lint_prometheus;
pub use hist::{Hist, HistSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A completed span, ready for the Chrome-trace exporter.
#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub(crate) site: &'static str,
    pub(crate) job: u64,
    pub(crate) tid: u64,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
    pub(crate) labels: Vec<(&'static str, String)>,
}

/// Trace thread ids: small, stable per OS thread, assigned on first use.
fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The shared recording core behind an enabled [`Obs`] handle.
///
/// All aggregation keys are `(metric name, rendered label set)` pairs in
/// ordered maps, so exports are deterministic byte streams for a given
/// set of recorded values.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    pub(crate) counters: Mutex<BTreeMap<(&'static str, String), u64>>,
    pub(crate) gauges: Mutex<BTreeMap<(&'static str, String), i64>>,
    pub(crate) hists: Mutex<BTreeMap<(&'static str, String), Arc<Hist>>>,
    pub(crate) spans: Mutex<Vec<SpanEvent>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder; its epoch (trace time zero) is now.
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The recorder's monotonic epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn add(&self, name: &'static str, labels: String, v: u64) {
        let mut c = self.counters.lock().expect("obs counters");
        *c.entry((name, labels)).or_insert(0) += v;
    }

    fn gauge_set(&self, name: &'static str, labels: String, v: i64) {
        let mut g = self.gauges.lock().expect("obs gauges");
        g.insert((name, labels), v);
    }

    /// The atomic histogram for `(name, labels)`, creating it on first
    /// use. Callers on warm paths should hold the returned `Arc` and
    /// record through it without re-looking it up.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Hist> {
        let key = (name, render_labels(labels));
        let mut h = self.hists.lock().expect("obs hists");
        Arc::clone(h.entry(key).or_insert_with(|| Arc::new(Hist::new())))
    }

    fn observe_ns(&self, name: &'static str, labels: &[(&'static str, &str)], ns: u64) {
        self.histogram(name, labels).record_ns(ns);
    }

    fn push_span(&self, ev: SpanEvent) {
        self.spans.lock().expect("obs spans").push(ev);
    }

    /// Merged snapshot of every histogram named `name`, across all its
    /// label sets (deterministic: label sets merge in ordered-map
    /// order, and merging is commutative anyway).
    pub fn histogram_snapshot(&self, name: &str) -> HistSnapshot {
        let h = self.hists.lock().expect("obs hists");
        let mut merged = HistSnapshot::new();
        for ((n, _), hist) in h.iter() {
            if *n == name {
                merged.merge(&hist.snapshot());
            }
        }
        merged
    }

    /// Number of completed spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.spans.lock().expect("obs spans").len()
    }
}

/// Renders a label slice to its canonical exposition fragment:
/// `k1="v1",k2="v2"` with keys in sorted order.
fn render_labels(labels: &[(&'static str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Escape per the exposition format.
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// The cheap, cloneable observability handle threaded through every
/// layer's options (mirroring the `FaultHook` idiom). Disabled — the
/// default — it is a `None` and every event is one branch. Enabled, it
/// shares one [`Recorder`] and carries a default job tag for spans.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Recorder>>,
    job: u64,
}

impl Obs {
    /// The disarmed handle (same as `Obs::default()`).
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// A handle over a fresh [`Recorder`].
    pub fn enabled() -> Obs {
        #[cfg(feature = "off")]
        {
            Obs::default()
        }
        #[cfg(not(feature = "off"))]
        {
            Obs {
                inner: Some(Arc::new(Recorder::new())),
                job: 0,
            }
        }
    }

    /// A handle sharing an existing recorder.
    pub fn with_recorder(rec: Arc<Recorder>) -> Obs {
        #[cfg(feature = "off")]
        {
            let _ = rec;
            Obs::default()
        }
        #[cfg(not(feature = "off"))]
        {
            Obs {
                inner: Some(rec),
                job: 0,
            }
        }
    }

    /// Whether events are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared recorder, when enabled.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.inner.as_ref()
    }

    /// A clone carrying `job` as the default span tag — hand this to
    /// per-job workers so every span they open is attributed.
    pub fn tagged(&self, job: u64) -> Obs {
        Obs {
            inner: self.inner.clone(),
            job,
        }
    }

    /// The handle's default job tag.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Opens a span at `site` tagged with the handle's job id. Records
    /// on drop. Disabled: returns an inert guard, no clock, no
    /// allocation.
    #[inline]
    pub fn span(&self, site: &'static str) -> Span {
        self.span_for(site, self.job)
    }

    /// Opens a span with an explicit job id.
    #[inline]
    pub fn span_for(&self, site: &'static str, job: u64) -> Span {
        Span {
            inner: self.inner.as_ref().map(|rec| SpanInner {
                rec: Arc::clone(rec),
                site,
                job,
                start: Instant::now(),
                labels: Vec::new(),
            }),
        }
    }

    /// Records a span whose interval was measured externally (e.g. a
    /// queue wait that started on another thread): `start` is when it
    /// began, `dur` how long it lasted.
    pub fn record_span(
        &self,
        site: &'static str,
        job: u64,
        start: Instant,
        dur: Duration,
        labels: &[(&'static str, &str)],
    ) {
        if let Some(rec) = &self.inner {
            let start_ns = start
                .saturating_duration_since(rec.epoch)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            rec.push_span(SpanEvent {
                site,
                job,
                tid: trace_tid(),
                start_ns,
                dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
            });
        }
    }

    /// Increments counter `name` by `v`.
    #[inline]
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(rec) = &self.inner {
            rec.add(name, String::new(), v);
        }
    }

    /// Increments a labeled counter.
    #[inline]
    pub fn add_labeled(&self, name: &'static str, labels: &[(&'static str, &str)], v: u64) {
        if let Some(rec) = &self.inner {
            rec.add(name, render_labels(labels), v);
        }
    }

    /// Sets gauge `name` to `v`.
    #[inline]
    pub fn gauge(&self, name: &'static str, v: i64) {
        if let Some(rec) = &self.inner {
            rec.gauge_set(name, String::new(), v);
        }
    }

    /// Records a duration into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, d: Duration) {
        self.observe_labeled(name, &[], d);
    }

    /// Records a duration into a labeled histogram.
    #[inline]
    pub fn observe_labeled(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        d: Duration,
    ) {
        if let Some(rec) = &self.inner {
            rec.observe_ns(name, labels, d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Merged (p50, p90, p99) in seconds of every histogram named
    /// `name`, across label sets. All zeros when disabled or empty.
    pub fn quantiles(&self, name: &str) -> (f64, f64, f64) {
        match &self.inner {
            Some(rec) => rec.histogram_snapshot(name).percentiles(),
            None => (0.0, 0.0, 0.0),
        }
    }

    /// The Prometheus-style text exposition page. Disabled handles
    /// return a comment-only page (still lint-clean).
    pub fn prometheus_text(&self) -> String {
        match &self.inner {
            Some(rec) => export::prometheus_text(rec),
            None => "# matex-obs: disabled\n".to_string(),
        }
    }

    /// The Chrome-trace-format JSON timeline (open in `chrome://tracing`
    /// or <https://ui.perfetto.dev>). Disabled handles return an empty
    /// trace.
    pub fn chrome_trace_json(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":{}}}",
            self.chrome_trace_events()
        )
    }

    /// Just the JSON array of trace events — the mergeable core of
    /// [`Obs::chrome_trace_json`] (concatenate arrays from several
    /// recorders to build one timeline).
    pub fn chrome_trace_events(&self) -> String {
        match &self.inner {
            Some(rec) => export::chrome_trace_events(rec),
            None => "[]".to_string(),
        }
    }
}

/// RAII span guard: measures from construction to drop on the monotonic
/// clock, then records. Inert (and allocation-free) when the handle was
/// disabled.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    rec: Arc<Recorder>,
    site: &'static str,
    job: u64,
    start: Instant,
    labels: Vec<(&'static str, String)>,
}

impl Span {
    /// Attaches (or overwrites) a label — e.g. the cache hit path,
    /// known only at completion.
    pub fn label(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            let value = value.into();
            match inner.labels.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = value,
                None => inner.labels.push((key, value)),
            }
        }
    }

    /// Re-tags the span's job id (when it was not known at open time).
    pub fn set_job(&mut self, job: u64) {
        if let Some(inner) = &mut self.inner {
            inner.job = job;
        }
    }

    /// Whether this guard records anything on drop.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur = inner.start.elapsed();
            let start_ns = inner
                .start
                .saturating_duration_since(inner.rec.epoch)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            inner.rec.push_span(SpanEvent {
                site: inner.site,
                job: inner.job,
                tid: trace_tid(),
                start_ns,
                dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                labels: inner.labels,
            });
        }
    }
}

/// Opens an RAII span: `span!(obs, "site")` uses the handle's job tag,
/// `span!(obs, "site", job_id)` tags explicitly.
#[macro_export]
macro_rules! span {
    ($obs:expr, $site:expr) => {
        $obs.span($site)
    };
    ($obs:expr, $site:expr, $job:expr) => {
        $obs.span_for($site, $job)
    };
}

// Compile the crate README's code blocks as doctests.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        obs.add("a_total", 1);
        obs.observe("b_seconds", Duration::from_millis(1));
        obs.gauge("c", 3);
        let span = obs.span("site");
        assert!(!span.is_armed());
        drop(span);
        assert_eq!(obs.quantiles("b_seconds"), (0.0, 0.0, 0.0));
        assert_eq!(obs.prometheus_text(), "# matex-obs: disabled\n");
        assert_eq!(obs.chrome_trace_events(), "[]");
    }

    #[test]
    fn spans_record_on_drop_with_labels() {
        let obs = Obs::enabled().tagged(42);
        {
            let mut s = span!(obs, "engine.run");
            s.label("hit", "warm");
            s.label("hit", "whatif"); // overwrite, not duplicate
        }
        {
            let _s = span!(obs, "solver.dc", 43);
        }
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.span_count(), 2);
        let trace = obs.chrome_trace_json();
        assert!(trace.contains("\"engine.run\""));
        assert!(trace.contains("\"hit\":\"whatif\""));
        assert!(!trace.contains("\"warm\""));
        assert!(trace.contains("\"job\":43"));
    }

    #[test]
    fn counters_and_gauges_aggregate_by_label_set() {
        let obs = Obs::enabled();
        obs.add_labeled("jobs_total", &[("hit", "warm")], 2);
        obs.add_labeled("jobs_total", &[("hit", "warm")], 3);
        obs.add_labeled("jobs_total", &[("hit", "cold")], 1);
        obs.gauge("depth", 7);
        obs.gauge("depth", 4); // gauges overwrite
        let page = obs.prometheus_text();
        assert!(page.contains("matex_jobs_total{hit=\"warm\"} 5"));
        assert!(page.contains("matex_jobs_total{hit=\"cold\"} 1"));
        assert!(page.contains("matex_depth 4"));
    }

    #[test]
    fn quantiles_merge_across_label_sets() {
        let obs = Obs::enabled();
        for _ in 0..90 {
            obs.observe_labeled(
                "job_seconds",
                &[("hit", "warm")],
                Duration::from_nanos(1000),
            );
        }
        for _ in 0..10 {
            obs.observe_labeled("job_seconds", &[("hit", "cold")], Duration::from_millis(1));
        }
        let (p50, p90, p99) = obs.quantiles("job_seconds");
        assert_eq!(p50, 1023.0 / 1e9);
        assert_eq!(p90, 1023.0 / 1e9);
        assert_eq!(p99, 1_048_575.0 / 1e9);
    }

    #[test]
    fn tagged_handles_share_the_recorder() {
        let obs = Obs::enabled();
        let t = obs.tagged(9);
        t.add("shared_total", 1);
        assert!(obs.prometheus_text().contains("matex_shared_total 1"));
        assert_eq!(t.job(), 9);
        assert_eq!(obs.job(), 0);
    }

    #[test]
    fn external_interval_spans_record() {
        let obs = Obs::enabled();
        let start = Instant::now();
        obs.record_span(
            "engine.queue",
            5,
            start,
            Duration::from_micros(250),
            &[("class", "high")],
        );
        let trace = obs.chrome_trace_json();
        assert!(trace.contains("\"engine.queue\""));
        assert!(trace.contains("\"class\":\"high\""));
    }
}
