//! Satellite-3 property test: merging per-thread histograms in **any
//! order** yields identical buckets and quantiles.
//!
//! Merging is element-wise addition over deterministic fixed buckets,
//! so it must be commutative and associative; this test drives that
//! claim with generated populations and generated merge permutations,
//! comparing both the full bucket vectors and the derived quantiles
//! bit for bit.

use matex_obs::hist::{bucket_index, bucket_upper_ns, NUM_BUCKETS};
use matex_obs::HistSnapshot;
use proptest::prelude::*;

/// Applies a permutation (encoded as selection indices) to merge order.
fn merge_in_order(parts: &[HistSnapshot], order: &[usize]) -> HistSnapshot {
    let mut acc = HistSnapshot::new();
    for &i in order {
        acc.merge(&parts[i]);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_order_invariant(
        // 3–6 "threads", each with its own latency population.
        populations in prop::collection::vec(
            prop::collection::vec(0usize..200_000_000, 1..40),
            3..7,
        ),
        shuffle_seed in 0usize..10_000,
    ) {
        let parts: Vec<HistSnapshot> = populations
            .iter()
            .map(|pop| {
                let mut h = HistSnapshot::new();
                for &ns in pop {
                    h.record_ns(ns as u64);
                }
                h
            })
            .collect();

        // Forward order vs a deterministically shuffled order.
        let forward: Vec<usize> = (0..parts.len()).collect();
        let mut shuffled = forward.clone();
        let mut state = shuffle_seed as u64 | 1;
        for i in (1..shuffled.len()).rev() {
            // splitmix-ish step; determinism is all that matters here.
            state = state
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x2545_f491_4f6c_dd1d);
            shuffled.swap(i, (state as usize) % (i + 1));
        }

        let a = merge_in_order(&parts, &forward);
        let b = merge_in_order(&parts, &shuffled);
        // Buckets identical...
        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.count(), b.count());
        // ...and therefore every quantile is bitwise identical.
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q).to_bits(), b.quantile(q).to_bits());
        }

        // The merged totals equal the single-histogram ground truth.
        let mut all = HistSnapshot::new();
        for pop in &populations {
            for &ns in pop {
                all.record_ns(ns as u64);
            }
        }
        prop_assert_eq!(a, all);
    }

    #[test]
    fn bucket_bounds_bracket_every_value(raw in 0usize..usize::MAX, shift in 0usize..24) {
        // Spread the generated values across the full u64 range: the
        // shift reaches octaves a uniform draw would almost never hit.
        let v = (raw as u64).wrapping_shl(shift as u32);
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(v <= bucket_upper_ns(i));
        if i > 0 {
            prop_assert!(bucket_upper_ns(i - 1) < v);
        }
    }
}
