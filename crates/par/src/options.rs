//! Thread-count configuration (`MATEX_THREADS` + builder API).

use crate::ParPool;

/// How many threads the parallel kernels may use.
///
/// Resolution order: an explicit [`ParOptions::threads`] wins; otherwise
/// the `MATEX_THREADS` environment variable; otherwise parallelism is
/// **off** (the legacy serial code paths run, byte-for-byte unchanged).
/// `MATEX_THREADS=1` is *not* the same as off: it selects the tiled
/// kernels on a one-thread pool, which is the reference point the
/// thread-count-invariance guarantee is stated against.
///
/// # Example
///
/// ```
/// use matex_par::ParOptions;
///
/// assert_eq!(ParOptions::with_threads(4).resolve(), Some(4));
/// assert_eq!(ParOptions::with_threads(0).resolve(), None); // explicit off
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParOptions {
    /// Total threads (workers + caller). `Some(0)` disables parallelism
    /// explicitly; `None` defers to `MATEX_THREADS`.
    pub threads: Option<usize>,
}

impl ParOptions {
    /// Options pinning an explicit thread count (0 = off).
    pub fn with_threads(threads: usize) -> ParOptions {
        ParOptions {
            threads: Some(threads),
        }
    }

    /// The effective thread count: `None` means "no parallel context"
    /// (serial legacy path), `Some(k)` means a `k`-thread pool.
    pub fn resolve(&self) -> Option<usize> {
        match self.threads {
            Some(0) => None,
            Some(n) => Some(n),
            None => env_threads(),
        }
    }

    /// Builds the pool these options describe, or `None` when
    /// parallelism is off.
    pub fn build_pool(&self) -> Option<ParPool> {
        self.resolve().map(ParPool::new)
    }
}

/// Parses `MATEX_THREADS`: unset, empty, `0`, or unparseable all mean
/// "parallelism off".
pub fn env_threads() -> Option<usize> {
    match std::env::var("MATEX_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => None,
            Ok(n) => Some(n),
        },
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_threads_win() {
        assert_eq!(ParOptions::with_threads(7).resolve(), Some(7));
        assert_eq!(ParOptions::with_threads(1).resolve(), Some(1));
    }

    #[test]
    fn explicit_zero_is_off() {
        assert_eq!(ParOptions::with_threads(0).resolve(), None);
        assert!(ParOptions::with_threads(0).build_pool().is_none());
    }

    #[test]
    fn build_pool_matches_resolution() {
        let pool = ParOptions::with_threads(2).build_pool().unwrap();
        assert_eq!(pool.threads(), 2);
    }
}
