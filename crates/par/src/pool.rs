//! The persistent worker pool.
//!
//! Design constraints, in order:
//!
//! 1. **Low dispatch latency.** The kernels this pool serves are small
//!    (a CSR mat-vec over a few thousand rows, one level of a triangular
//!    solve), so a dispatch must cost far less than a thread spawn.
//!    Workers therefore persist across calls and spin briefly on an
//!    epoch counter before parking on a condvar.
//! 2. **No allocation per dispatch.** [`ParPool::run`] publishes a
//!    borrowed closure through a pre-allocated job slot; the substitution
//!    hot path stays allocation-free with the pool engaged (see
//!    `matex-core/tests/alloc_free.rs`).
//! 3. **Determinism is the caller's, scheduling is ours.** The pool
//!    hands out item indices through a shared cursor, so *which* thread
//!    runs an item is arbitrary — callers must write to disjoint
//!    locations per item. Every kernel in this crate does, which is what
//!    makes results bitwise-invariant in the worker count.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Spin iterations on the epoch counter before a worker parks. Small on
/// purpose: on an oversubscribed host, spinning steals cycles from the
/// thread that actually has work.
const SPIN_ROUNDS: usize = 256;
/// Spin iterations the submitter performs waiting for stragglers before
/// it starts yielding its timeslice.
const DRAIN_SPINS: usize = 4096;

/// A lifetime-erased borrow of the submitted closure. Only valid while
/// the `run` call that published it is blocked in its drain loop.
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    len: usize,
}

struct Shared {
    /// Bumped once per published job (and once at shutdown).
    epoch: AtomicU64,
    /// Written by the submitter strictly before the epoch bump, cleared
    /// strictly after every worker finished — the epoch/active protocol
    /// is what makes the `UnsafeCell` race-free.
    job: UnsafeCell<Option<Job>>,
    /// Next unclaimed item of the current job.
    cursor: AtomicUsize,
    /// Workers that have not yet drained the current job.
    active: AtomicUsize,
    /// Workers currently parked (or about to park) on the condvar.
    sleepers: AtomicUsize,
    /// Set when any thread panicked inside the current job's closure;
    /// the submitter re-raises after the dispatch fully drains.
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
}

// SAFETY: the `job` cell is only written by the thread inside `run`
// (serialized by `submit`), with a release epoch bump between the write
// and any worker read, and cleared only after `active` drained to zero.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// A persistent, reusable worker pool (`threads - 1` workers plus the
/// calling thread).
///
/// One pool dispatch executes a closure once per item index, with the
/// items distributed over the workers through a shared cursor. Dispatches
/// are serialized: concurrent `run` calls queue on an internal mutex, so
/// sharing a pool across threads is safe but not concurrent — the
/// distributed scheduler instead gives every worker its own pool slice
/// (see `matex_dist`).
///
/// # Example
///
/// ```
/// use matex_par::ParPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ParPool::new(2);
/// let hits = AtomicUsize::new(0);
/// pool.run(100, &|_i| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ParPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    submit: Mutex<()>,
}

impl std::fmt::Debug for ParPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl ParPool {
    /// Creates a pool that executes with `threads` total threads
    /// (`threads - 1` spawned workers; the submitting thread is always
    /// the last participant).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> ParPool {
        assert!(threads >= 1, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job: UnsafeCell::new(None),
            cursor: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|k| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("matex-par-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ParPool {
            shared,
            workers,
            submit: Mutex::new(()),
        }
    }

    /// A one-thread pool: every dispatch runs inline on the caller.
    /// Kernels driven by a serial pool execute the *same tiled
    /// algorithms* as any wider pool, which is what makes results
    /// bitwise-invariant in `MATEX_THREADS`.
    pub fn serial() -> ParPool {
        ParPool::new(1)
    }

    /// Total threads a dispatch executes on (workers + caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Executes `f(i)` for every `i in 0..len`, distributing items over
    /// the pool. Blocks until all items completed. `f` must tolerate
    /// being called from several threads at once on *different* items;
    /// for deterministic results it must write only to locations owned
    /// by its item.
    ///
    /// # Panics
    ///
    /// A panic inside `f` — on any thread — is re-raised here on the
    /// submitting thread, but only after every worker finished with the
    /// job (the borrowed closure must never be touched after `run`
    /// unwinds).
    pub fn run(&self, len: usize, f: &(dyn Fn(usize) + Sync)) {
        if len == 0 {
            return;
        }
        if self.workers.is_empty() || len == 1 {
            for i in 0..len {
                f(i);
            }
            return;
        }
        // Poisoning carries no meaning for either pool mutex (the drain
        // guard restores every invariant on unwind), so a panic inside a
        // previous dispatch must not brick the pool.
        let _guard = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        let shared = &*self.shared;
        // Publish the job. The borrow is erased to 'static only for the
        // duration of this call: the drain guard below does not release
        // it until every worker has finished with it — including when
        // `f` panics on this thread mid-participation.
        let func: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        unsafe {
            *shared.job.get() = Some(Job { func, len });
        }
        shared.cursor.store(0, Ordering::Relaxed);
        shared.active.store(self.workers.len(), Ordering::Relaxed);
        shared.panicked.store(false, Ordering::Relaxed);
        shared.epoch.fetch_add(1, Ordering::SeqCst);
        if shared.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this notify against any worker that
            // is between its sleeper registration and its wait.
            let _g = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
            shared.cv.notify_all();
        }
        {
            // Runs the drain-wait on every exit path, unwinding included.
            let _drain = DrainGuard { shared };
            // Participate.
            loop {
                let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                f(i);
            }
        }
        if shared.panicked.load(Ordering::Acquire) {
            panic!("a ParPool worker panicked inside a dispatched closure");
        }
    }
}

/// Waits for every worker to finish the current job and clears the slot
/// when dropped — the unwind-safety anchor of [`ParPool::run`]: whether
/// the submitter's participation loop completes or panics, the borrowed
/// closure is not released until no worker can still be executing it.
struct DrainGuard<'a> {
    shared: &'a Shared,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        let mut spins = 0usize;
        while self.shared.active.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < DRAIN_SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        unsafe {
            *self.shared.job.get() = None;
        }
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        {
            let _g = self.shared.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        // Wait for a new epoch: spin briefly, then park.
        let mut spins = 0usize;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                let mut g = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
                while shared.epoch.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    g = shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                drop(g);
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                spins = 0;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the epoch Acquire above pairs with the submitter's
        // SeqCst bump, which happens after the job write; the slot is
        // not cleared until this worker decrements `active`.
        let (func, len) = unsafe {
            let job = (*shared.job.get()).as_ref().expect("job published");
            (job.func, job.len)
        };
        let f = unsafe { &*func };
        // A panicking closure must not kill the worker: the submitter
        // waits for `active` to drain before releasing the job borrow,
        // so the worker catches the unwind, flags it, and keeps serving.
        // The payload is dropped; the submitter re-raises a fresh panic.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            f(i);
        }));
        if outcome.is_err() {
            // Park the cursor at the end so co-workers stop claiming
            // items of a job that is already failed (concurrent
            // fetch_adds only push it further past `len` — never enough
            // to wrap).
            shared.cursor.store(len, Ordering::Relaxed);
            shared.panicked.store(true, Ordering::Release);
        }
        shared.active.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_item_runs_exactly_once() {
        let pool = ParPool::new(4);
        for len in [0usize, 1, 2, 7, 64, 1000] {
            let counts: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
            pool.run(len, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = ParPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(17, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 17);
    }

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ParPool::serial();
        assert_eq!(pool.threads(), 1);
        let seen = Mutex::new(Vec::new());
        pool.run(5, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn workers_survive_parking() {
        // Force the park path by sleeping between dispatches.
        let pool = ParPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            pool.run(100, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ParPool::new(0);
    }

    #[test]
    fn panicking_closure_propagates_and_pool_survives() {
        // A panic on any thread must re-raise on the submitter (not
        // hang the drain loop), and the pool must stay usable after.
        let pool = ParPool::new(3);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(64, &|i| {
                assert!(i != 13, "injected failure");
            });
        }));
        assert!(attempt.is_err(), "panic must propagate out of run");
        let total = AtomicUsize::new(0);
        pool.run(100, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
