//! Shared parallel-kernel layer for the MATEX stack.
//!
//! The per-node cost of a MATEX transient run is dominated by Krylov
//! subspace generation: sparse mat-vecs, forward/backward substitution
//! pairs, and Gram–Schmidt orthogonalization (paper Sec. 3.2–3.3). This
//! crate provides the std-only machinery those kernels parallelize over:
//!
//! * [`ParPool`] — a persistent, reusable worker pool (spin-then-park
//!   dispatch, no allocation per call, caller participates),
//! * [`ParOptions`] — thread-count resolution (`MATEX_THREADS` env var +
//!   explicit API),
//! * tiled kernels ([`dot`], [`norm2`], [`multi_dot`],
//!   [`subtract_combination`], [`combine_columns`], [`div_in_place`])
//!   with **fixed tile boundaries and deterministic tile-order
//!   reductions**, so results are bitwise-invariant in the thread count,
//! * [`RawVec`] — the tile-disjoint shared-write primitive the kernels
//!   (and `matex_sparse`'s level-scheduled triangular solve) build on.
//!
//! # Determinism contract
//!
//! A kernel driven by a `k`-thread pool produces **bit-for-bit** the
//! same output for every `k ≥ 1`: tiles are a function of the problem
//! size alone and partials combine serially in tile order. The *legacy*
//! serial code paths (no pool at all — `MATEX_THREADS` unset) remain
//! byte-for-byte what they were before this crate existed; elementwise
//! and triangular-solve kernels match them exactly, while tiled
//! *reductions* differ from a naive left-to-right sum only by the usual
//! reassociation rounding.
//!
//! # Example
//!
//! ```
//! use matex_par::{ParOptions, ParPool};
//!
//! // Explicit thread count; ParOptions::default() reads MATEX_THREADS.
//! let pool = ParPool::new(2);
//! let x: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
//! let serial = ParPool::serial();
//! // Bitwise equality across pool widths.
//! assert_eq!(
//!     matex_par::dot(&pool, &x, &x).to_bits(),
//!     matex_par::dot(&serial, &x, &x).to_bits(),
//! );
//! assert_eq!(ParOptions::with_threads(0).resolve(), None);
//! ```

mod budget;
mod kernels;
mod options;
mod pool;

pub use budget::{AdmitError, AdmitRequest, BudgetLease, Priority, ThreadBudget};
pub use kernels::{
    combine_columns, div_in_place, dot, multi_dot, norm2, subtract_combination, tile_span, tiles,
    RawVec, PAR_MIN, TILE,
};
pub use options::{env_threads, ParOptions};
pub use pool::ParPool;

// Compile the crate README's code blocks as doctests so the documented
// threading model can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
