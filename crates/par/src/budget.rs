//! Thread-budget admission control for concurrent jobs.
//!
//! A scenario engine multiplexes many independent solver jobs over one
//! machine. Each job brings its own worker threads and kernel pools; run
//! enough of them at once and the host oversubscribes, wrecking every
//! job's latency. [`ThreadBudget`] is the admission primitive: a
//! fair (FIFO) counting semaphore over a fixed total thread budget.
//! A job acquires a lease for the threads it will occupy before it
//! starts and releases it (by dropping the [`BudgetLease`]) when it
//! finishes, so the sum of running jobs' thread demands never exceeds
//! the budget.
//!
//! Grants are strictly first-come-first-served: a wide job at the head
//! of the queue blocks later narrow jobs until it fits, so heavy jobs
//! cannot be starved by a stream of light ones.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct BudgetState {
    in_use: usize,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to try to acquire (FIFO fairness).
    now_serving: u64,
}

/// A fair counting semaphore over a total thread budget.
///
/// # Example
///
/// ```
/// use matex_par::ThreadBudget;
///
/// let budget = ThreadBudget::new(8);
/// let a = budget.acquire(5);
/// assert_eq!(budget.in_use(), 5);
/// assert!(budget.try_acquire(4).is_none()); // would oversubscribe
/// drop(a);
/// let b = budget.try_acquire(4).expect("fits after release");
/// assert_eq!(b.threads(), 4);
/// ```
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    state: Mutex<BudgetState>,
    cv: Condvar,
}

impl ThreadBudget {
    /// A budget of `total` threads (at least 1).
    pub fn new(total: usize) -> ThreadBudget {
        ThreadBudget {
            total: total.max(1),
            state: Mutex::new(BudgetState {
                in_use: 0,
                next_ticket: 0,
                now_serving: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The total thread budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Threads currently leased out.
    pub fn in_use(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).in_use
    }

    /// Clamps a demand into the grantable range `1..=total`. A job
    /// asking for more than the whole machine is admitted alone rather
    /// than deadlocked forever.
    fn clamp(&self, want: usize) -> usize {
        want.clamp(1, self.total)
    }

    /// Blocks until `want` threads (clamped to the budget) can be leased,
    /// in strict FIFO order with every other acquirer.
    pub fn acquire(&self, want: usize) -> BudgetLease<'_> {
        let want = self.clamp(want);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        while st.now_serving != ticket || st.in_use + want > self.total {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.in_use += want;
        st.now_serving += 1;
        self.cv.notify_all();
        BudgetLease {
            budget: self,
            threads: want,
        }
    }

    /// Non-blocking acquire: `None` when the lease does not fit *right
    /// now* or earlier acquirers are still queued (FIFO is preserved —
    /// `try_acquire` never jumps the line).
    pub fn try_acquire(&self, want: usize) -> Option<BudgetLease<'_>> {
        let want = self.clamp(want);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.now_serving != st.next_ticket || st.in_use + want > self.total {
            return None;
        }
        st.next_ticket += 1;
        st.now_serving += 1;
        st.in_use += want;
        Some(BudgetLease {
            budget: self,
            threads: want,
        })
    }
}

/// An outstanding lease of budget threads; returns them on drop.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    budget: &'a ThreadBudget,
    threads: usize,
}

impl BudgetLease<'_> {
    /// Threads this lease holds.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        let mut st = self.budget.state.lock().unwrap_or_else(|e| e.into_inner());
        st.in_use -= self.threads;
        drop(st);
        self.budget.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn leases_never_oversubscribe() {
        let budget = Arc::new(ThreadBudget::new(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (budget, peak, current) = (budget.clone(), peak.clone(), current.clone());
                std::thread::spawn(move || {
                    let lease = budget.acquire(1 + i % 3);
                    let now =
                        current.fetch_add(lease.threads(), Ordering::SeqCst) + lease.threads();
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    current.fetch_sub(lease.threads(), Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "budget exceeded");
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn oversized_demands_are_clamped_not_deadlocked() {
        let budget = ThreadBudget::new(2);
        let lease = budget.acquire(100);
        assert_eq!(lease.threads(), 2);
        drop(lease);
        let zero = budget.acquire(0);
        assert_eq!(zero.threads(), 1);
    }

    #[test]
    fn fifo_wide_job_is_not_starved() {
        // A 4-thread job queued behind a running 1-thread job must be
        // served before 1-thread jobs that arrived after it.
        let budget = Arc::new(ThreadBudget::new(4));
        let first = budget.acquire(1);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let wide = {
            let (budget, order) = (budget.clone(), order.clone());
            std::thread::spawn(move || {
                let _lease = budget.acquire(4);
                order.lock().unwrap().push("wide");
            })
        };
        // Give the wide job time to take its ticket.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let narrow = {
            let (budget, order) = (budget.clone(), order.clone());
            std::thread::spawn(move || {
                let _lease = budget.acquire(1);
                order.lock().unwrap().push("narrow");
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Nothing can proceed while `first` holds a thread and the wide
        // job heads the queue.
        assert!(order.lock().unwrap().is_empty());
        drop(first);
        wide.join().unwrap();
        narrow.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["wide", "narrow"]);
    }

    #[test]
    fn try_acquire_respects_queue_and_capacity() {
        let budget = ThreadBudget::new(2);
        let a = budget.try_acquire(2).expect("empty budget grants");
        assert!(budget.try_acquire(1).is_none());
        drop(a);
        assert!(budget.try_acquire(1).is_some());
    }
}
