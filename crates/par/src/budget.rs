//! Thread-budget admission control for concurrent jobs.
//!
//! A scenario engine multiplexes many independent solver jobs over one
//! machine. Each job brings its own worker threads and kernel pools; run
//! enough of them at once and the host oversubscribes, wrecking every
//! job's latency. [`ThreadBudget`] is the admission primitive: a
//! counting semaphore over a fixed total thread budget. A job acquires
//! a lease for the threads it will occupy before it starts and releases
//! it (by dropping the [`BudgetLease`]) when it finishes, so the sum of
//! running jobs' thread demands never exceeds the budget.
//!
//! Admission order is **strict priority classes with
//! earliest-deadline-first inside each class** ([`AdmitRequest`]): a
//! queued [`Priority::High`] request is always served before queued
//! normal or low ones, and within a class requests with earlier
//! deadlines go first; requests without deadlines rank as
//! infinitely-late deadlines and fall back to arrival (FIFO) order
//! among themselves. Only the best-ranked waiter may take threads — a
//! wide job at the head of its class blocks later narrow peers until it
//! fits, so heavy jobs cannot be starved by a stream of light ones.
//! The legacy [`ThreadBudget::acquire`] is the degenerate case: every
//! caller is `Priority::Normal` with no deadline, which is exactly the
//! old fair-FIFO semaphore.
//!
//! Overload safety comes from two bounds: an optional waiter-queue
//! limit ([`ThreadBudget::with_queue_limit`]) that fails
//! [`ThreadBudget::acquire_admit`] immediately with
//! [`AdmitError::QueueFull`] instead of queueing without bound, and a
//! per-request deadline after which a still-queued request gives up
//! with [`AdmitError::DeadlineExpired`]. Both outcomes are counted
//! ([`ThreadBudget::rejected`], [`ThreadBudget::timed_out`]) and the
//! live queue depth is observable ([`ThreadBudget::queue_depth`]).

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Strict admission priority class; lower classes are always served
/// first when both are queued.
///
/// # Example
///
/// ```
/// use matex_par::Priority;
///
/// assert!(Priority::High.class() < Priority::Normal.class());
/// assert_eq!(Priority::parse("low"), Some(Priority::Low));
/// assert_eq!(Priority::default(), Priority::Normal);
/// assert_eq!(Priority::High.as_str(), "high");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served before everything else that is queued.
    High,
    /// The default class; the legacy FIFO behavior lives here.
    #[default]
    Normal,
    /// Background work: served only when no higher class is queued.
    Low,
}

impl Priority {
    /// The numeric class (0 is most urgent).
    pub fn class(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The canonical lowercase name (`"high"`/`"normal"`/`"low"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a canonical name; `None` for anything else.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// A priority/deadline-qualified admission request for
/// [`ThreadBudget::acquire_admit`] / [`ThreadBudget::try_acquire_admit`].
///
/// # Example
///
/// ```
/// use matex_par::{AdmitRequest, Priority, ThreadBudget};
/// use std::time::{Duration, Instant};
///
/// let budget = ThreadBudget::new(4);
/// let req = AdmitRequest::new(2)
///     .priority(Priority::High)
///     .deadline(Instant::now() + Duration::from_secs(1));
/// let lease = budget.acquire_admit(req).expect("uncontended grant");
/// assert_eq!(lease.threads(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AdmitRequest {
    want: usize,
    priority: Priority,
    deadline: Option<Instant>,
}

impl AdmitRequest {
    /// A `Priority::Normal` request for `want` threads with no deadline.
    pub fn new(want: usize) -> AdmitRequest {
        AdmitRequest {
            want,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Sets the priority class.
    pub fn priority(mut self, p: Priority) -> AdmitRequest {
        self.priority = p;
        self
    }

    /// Sets the absolute deadline: the request is ranked EDF within its
    /// class while queued and gives up with
    /// [`AdmitError::DeadlineExpired`] if still unserved at `t`.
    pub fn deadline(mut self, t: Instant) -> AdmitRequest {
        self.deadline = Some(t);
        self
    }
}

/// Why an admission request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmitError {
    /// The waiter queue was at its configured bound; the request was
    /// rejected without queueing. Carries the depth observed.
    QueueFull(usize),
    /// The request's deadline passed before threads could be granted.
    DeadlineExpired,
    /// A `try` acquire could not be served immediately (threads busy or
    /// better-ranked waiters queued).
    WouldBlock,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull(depth) => {
                write!(f, "admission queue full ({depth} waiters)")
            }
            AdmitError::DeadlineExpired => write!(f, "deadline expired while queued"),
            AdmitError::WouldBlock => write!(f, "would block"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Rank of a queued waiter: strict class, then EDF (no deadline ranks
/// as infinitely late), then arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WaitKey {
    class: u8,
    deadline: Option<Instant>,
    seq: u64,
}

impl Ord for WaitKey {
    fn cmp(&self, other: &WaitKey) -> CmpOrdering {
        self.class
            .cmp(&other.class)
            .then_with(|| match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => a.cmp(&b),
                (Some(_), None) => CmpOrdering::Less,
                (None, Some(_)) => CmpOrdering::Greater,
                (None, None) => CmpOrdering::Equal,
            })
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for WaitKey {
    fn partial_cmp(&self, other: &WaitKey) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct BudgetState {
    in_use: usize,
    /// Arrival counter for FIFO tie-breaks.
    next_seq: u64,
    /// Keys of every queued (blocked) waiter; the minimum is the head.
    waiters: Vec<WaitKey>,
}

impl BudgetState {
    fn head(&self) -> Option<WaitKey> {
        self.waiters.iter().min().copied()
    }

    fn remove(&mut self, key: WaitKey) {
        if let Some(pos) = self.waiters.iter().position(|w| *w == key) {
            self.waiters.swap_remove(pos);
        }
    }
}

/// A priority-aware counting semaphore over a total thread budget.
///
/// # Example
///
/// ```
/// use matex_par::ThreadBudget;
///
/// let budget = ThreadBudget::new(8);
/// let a = budget.acquire(5);
/// assert_eq!(budget.in_use(), 5);
/// assert!(budget.try_acquire(4).is_none()); // would oversubscribe
/// drop(a);
/// let b = budget.try_acquire(4).expect("fits after release");
/// assert_eq!(b.threads(), 4);
/// ```
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    /// `usize::MAX` means unbounded (the default).
    queue_limit: usize,
    state: Mutex<BudgetState>,
    cv: Condvar,
    rejected: AtomicU64,
    timed_out: AtomicU64,
}

impl ThreadBudget {
    /// A budget of `total` threads (at least 1) with an unbounded
    /// waiter queue.
    pub fn new(total: usize) -> ThreadBudget {
        ThreadBudget::with_queue_limit(total, usize::MAX)
    }

    /// A budget of `total` threads whose waiter queue holds at most
    /// `limit` queued [`acquire_admit`](ThreadBudget::acquire_admit)
    /// requests; further ones fail fast with [`AdmitError::QueueFull`].
    /// The infallible legacy [`acquire`](ThreadBudget::acquire) is
    /// exempt from the bound (it has no error path).
    pub fn with_queue_limit(total: usize, limit: usize) -> ThreadBudget {
        ThreadBudget {
            total: total.max(1),
            queue_limit: limit,
            state: Mutex::new(BudgetState {
                in_use: 0,
                next_seq: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
        }
    }

    /// The total thread budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Threads currently leased out.
    pub fn in_use(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).in_use
    }

    /// Requests currently queued (blocked) for admission.
    pub fn queue_depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .waiters
            .len()
    }

    /// Requests refused because the waiter queue was at its bound.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests that gave up because their deadline expired while queued.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Clamps a demand into the grantable range `1..=total`. A job
    /// asking for more than the whole machine is admitted alone rather
    /// than deadlocked forever.
    fn clamp(&self, want: usize) -> usize {
        want.clamp(1, self.total)
    }

    /// Blocks until `want` threads (clamped to the budget) can be leased,
    /// in strict FIFO order with every other `Priority::Normal` acquirer.
    pub fn acquire(&self, want: usize) -> BudgetLease<'_> {
        match self.admit(self.clamp(want), Priority::Normal, None, true) {
            Ok(lease) => lease,
            // Unreachable: no deadline and the bound is bypassed.
            Err(_) => unreachable!("unbounded no-deadline admit cannot fail"),
        }
    }

    /// Blocks until the request can be leased, honoring strict priority
    /// classes and EDF order within a class. Fails fast with
    /// [`AdmitError::QueueFull`] when the queue bound is hit, and with
    /// [`AdmitError::DeadlineExpired`] if the request's deadline passes
    /// while it is still queued.
    pub fn acquire_admit(&self, req: AdmitRequest) -> Result<BudgetLease<'_>, AdmitError> {
        self.admit(self.clamp(req.want), req.priority, req.deadline, false)
    }

    fn admit(
        &self,
        want: usize,
        priority: Priority,
        deadline: Option<Instant>,
        bypass_limit: bool,
    ) -> Result<BudgetLease<'_>, AdmitError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let key = WaitKey {
            class: priority.class(),
            deadline,
            seq: st.next_seq,
        };
        st.next_seq += 1;
        // Fast path: nobody ranked at-or-before us is queued and the
        // threads fit right now.
        let blocked =
            |st: &BudgetState| st.head().is_some_and(|h| h < key) || st.in_use + want > self.total;
        if !blocked(&st) {
            st.in_use += want;
            drop(st);
            self.cv.notify_all();
            return Ok(BudgetLease {
                budget: self,
                threads: want,
            });
        }
        if !bypass_limit && st.waiters.len() >= self.queue_limit {
            let depth = st.waiters.len();
            drop(st);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::QueueFull(depth));
        }
        st.waiters.push(key);
        loop {
            // Only the best-ranked waiter may take threads; everyone
            // else re-queues behind it even if they would fit.
            if st.head() == Some(key) && st.in_use + want <= self.total {
                st.remove(key);
                st.in_use += want;
                drop(st);
                // The next-best waiter may now be eligible.
                self.cv.notify_all();
                return Ok(BudgetLease {
                    budget: self,
                    threads: want,
                });
            }
            match deadline {
                None => st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.remove(key);
                        drop(st);
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                        // Our departure may unblock a worse-ranked waiter.
                        self.cv.notify_all();
                        return Err(AdmitError::DeadlineExpired);
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    /// Non-blocking acquire: `None` when the lease does not fit *right
    /// now* or queued acquirers rank at-or-before it (admission order is
    /// preserved — `try_acquire` never jumps the line).
    pub fn try_acquire(&self, want: usize) -> Option<BudgetLease<'_>> {
        self.try_acquire_admit(AdmitRequest::new(want)).ok()
    }

    /// Non-blocking priority acquire: grants immediately iff the
    /// threads fit and no queued waiter outranks the request (a
    /// `Priority::High` try may overtake queued normal traffic, exactly
    /// as a blocking high acquire would).
    pub fn try_acquire_admit(&self, req: AdmitRequest) -> Result<BudgetLease<'_>, AdmitError> {
        let want = self.clamp(req.want);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let key = WaitKey {
            class: req.priority.class(),
            deadline: req.deadline,
            seq: st.next_seq,
        };
        if st.head().is_some_and(|h| h < key) || st.in_use + want > self.total {
            return Err(AdmitError::WouldBlock);
        }
        st.next_seq += 1;
        st.in_use += want;
        drop(st);
        self.cv.notify_all();
        Ok(BudgetLease {
            budget: self,
            threads: want,
        })
    }
}

/// An outstanding lease of budget threads; returns them on drop.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    budget: &'a ThreadBudget,
    threads: usize,
}

impl BudgetLease<'_> {
    /// Threads this lease holds.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        let mut st = self.budget.state.lock().unwrap_or_else(|e| e.into_inner());
        st.in_use -= self.threads;
        drop(st);
        self.budget.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn leases_never_oversubscribe() {
        let budget = Arc::new(ThreadBudget::new(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (budget, peak, current) = (budget.clone(), peak.clone(), current.clone());
                std::thread::spawn(move || {
                    let lease = budget.acquire(1 + i % 3);
                    let now =
                        current.fetch_add(lease.threads(), Ordering::SeqCst) + lease.threads();
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    current.fetch_sub(lease.threads(), Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "budget exceeded");
        assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn oversized_demands_are_clamped_not_deadlocked() {
        let budget = ThreadBudget::new(2);
        let lease = budget.acquire(100);
        assert_eq!(lease.threads(), 2);
        drop(lease);
        let zero = budget.acquire(0);
        assert_eq!(zero.threads(), 1);
    }

    #[test]
    fn fifo_wide_job_is_not_starved() {
        // A 4-thread job queued behind a running 1-thread job must be
        // served before 1-thread jobs that arrived after it.
        let budget = Arc::new(ThreadBudget::new(4));
        let first = budget.acquire(1);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let wide = {
            let (budget, order) = (budget.clone(), order.clone());
            std::thread::spawn(move || {
                let _lease = budget.acquire(4);
                order.lock().unwrap().push("wide");
            })
        };
        // Give the wide job time to queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let narrow = {
            let (budget, order) = (budget.clone(), order.clone());
            std::thread::spawn(move || {
                let _lease = budget.acquire(1);
                order.lock().unwrap().push("narrow");
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Nothing can proceed while `first` holds a thread and the wide
        // job heads the queue.
        assert!(order.lock().unwrap().is_empty());
        drop(first);
        wide.join().unwrap();
        narrow.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["wide", "narrow"]);
    }

    #[test]
    fn try_acquire_respects_queue_and_capacity() {
        let budget = ThreadBudget::new(2);
        let a = budget.try_acquire(2).expect("empty budget grants");
        assert!(budget.try_acquire(1).is_none());
        drop(a);
        assert!(budget.try_acquire(1).is_some());
    }

    /// Spawns a blocked acquirer and waits until it is queued.
    fn queued_acquirer(
        budget: &Arc<ThreadBudget>,
        req: AdmitRequest,
        order: &Arc<std::sync::Mutex<Vec<&'static str>>>,
        tag: &'static str,
    ) -> std::thread::JoinHandle<()> {
        let depth = budget.queue_depth();
        let h = {
            let (budget, order) = (budget.clone(), order.clone());
            std::thread::spawn(move || {
                let _lease = budget.acquire_admit(req).expect("eventually served");
                order.lock().unwrap().push(tag);
            })
        };
        while budget.queue_depth() <= depth {
            std::thread::yield_now();
        }
        h
    }

    #[test]
    fn strict_priority_overtakes_queued_normal_traffic() {
        let budget = Arc::new(ThreadBudget::new(1));
        let hold = budget.acquire(1);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let normal = queued_acquirer(&budget, AdmitRequest::new(1), &order, "normal");
        let high = queued_acquirer(
            &budget,
            AdmitRequest::new(1).priority(Priority::High),
            &order,
            "high",
        );
        drop(hold);
        high.join().unwrap();
        normal.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["high", "normal"]);
    }

    #[test]
    fn edf_orders_within_a_class_and_fifo_breaks_ties() {
        let budget = Arc::new(ThreadBudget::new(1));
        let hold = budget.acquire(1);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let far = Instant::now() + Duration::from_secs(60);
        let near = Instant::now() + Duration::from_secs(30);
        // Arrival order: no-deadline, far, near — EDF must serve
        // near, far, then the deadline-less request last.
        let none = queued_acquirer(&budget, AdmitRequest::new(1), &order, "none");
        let late = queued_acquirer(&budget, AdmitRequest::new(1).deadline(far), &order, "far");
        let soon = queued_acquirer(&budget, AdmitRequest::new(1).deadline(near), &order, "near");
        drop(hold);
        soon.join().unwrap();
        late.join().unwrap();
        none.join().unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["near", "far", "none"]);
    }

    #[test]
    fn queue_limit_rejects_instead_of_queueing() {
        let budget = ThreadBudget::with_queue_limit(1, 1);
        let hold = budget.acquire(1);
        std::thread::scope(|s| {
            // First waiter occupies the single queue slot.
            let waiter = s.spawn(|| budget.acquire_admit(AdmitRequest::new(1)));
            while budget.queue_depth() == 0 {
                std::thread::yield_now();
            }
            // Second admit finds the queue full and is rejected now.
            let err = budget.acquire_admit(AdmitRequest::new(1)).unwrap_err();
            assert_eq!(err, AdmitError::QueueFull(1));
            assert_eq!(budget.rejected(), 1);
            drop(hold);
            assert!(waiter.join().unwrap().is_ok());
        });
        assert_eq!(budget.queue_depth(), 0);
    }

    #[test]
    fn deadline_expiry_releases_the_queue_slot() {
        let budget = ThreadBudget::new(1);
        let hold = budget.acquire(1);
        let deadline = Instant::now() + Duration::from_millis(10);
        let err = budget
            .acquire_admit(AdmitRequest::new(1).deadline(deadline))
            .unwrap_err();
        assert_eq!(err, AdmitError::DeadlineExpired);
        assert_eq!(budget.timed_out(), 1);
        assert_eq!(budget.queue_depth(), 0);
        drop(hold);
        assert!(budget.try_acquire(1).is_some());
    }

    #[test]
    fn try_admit_lets_high_jump_but_not_normal() {
        let budget = Arc::new(ThreadBudget::new(2));
        let hold = budget.acquire(1);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        // A wide normal waiter (wants 2) heads the queue and cannot fit.
        let wide = queued_acquirer(&budget, AdmitRequest::new(2), &order, "wide");
        // A normal try must not jump it, even though 1 thread is free.
        assert_eq!(
            budget.try_acquire_admit(AdmitRequest::new(1)).unwrap_err(),
            AdmitError::WouldBlock
        );
        // A high-priority try outranks the queued normal waiter.
        let jumped = budget
            .try_acquire_admit(AdmitRequest::new(1).priority(Priority::High))
            .expect("high try overtakes normal queue");
        drop(jumped);
        drop(hold);
        wide.join().unwrap();
    }
}
