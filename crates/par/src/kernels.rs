//! Deterministic tiled vector kernels.
//!
//! Every reduction here is computed over **fixed tile boundaries**
//! ([`TILE`] elements, a function of the problem size only) with the
//! per-tile partials combined serially **in tile order**. Which thread
//! computes a tile is arbitrary; the floating-point operation order is
//! not. That is the whole determinism story: for any pool width —
//! including the inline one-thread path — a kernel performs bit-for-bit
//! the same arithmetic.

use crate::ParPool;
use std::marker::PhantomData;
use std::ops::Range;

/// Elements per reduction tile. Fixed (never derived from the thread
/// count) so the combination order is invariant in `MATEX_THREADS`.
pub const TILE: usize = 1024;

/// Below this many elements of work a kernel runs inline on the caller:
/// dispatch latency would dominate. The inline path executes the same
/// tiled arithmetic, so the cutoff never affects results.
pub const PAR_MIN: usize = 8192;

/// Number of [`TILE`]-sized tiles covering `len` elements.
pub fn tiles(len: usize) -> usize {
    len.div_ceil(TILE)
}

/// Element range of tile `t` over `len` elements.
pub fn tile_span(t: usize, len: usize) -> Range<usize> {
    let start = t * TILE;
    start..((start + TILE).min(len))
}

/// A mutable `f64` buffer shareable across pool workers for
/// **tile-disjoint** writes (each item of a dispatch owns its own index
/// range; reads may target locations no concurrent item writes).
///
/// This is the escape hatch the tiled kernels and the level-scheduled
/// triangular solve are built on; all accesses go through raw pointers
/// so no `&mut` aliasing is ever formed across threads.
pub struct RawVec<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

unsafe impl Send for RawVec<'_> {}
unsafe impl Sync for RawVec<'_> {}

impl<'a> RawVec<'a> {
    /// Wraps a mutable slice for the duration of one dispatch.
    pub fn new(slice: &'a mut [f64]) -> RawVec<'a> {
        RawVec {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and no concurrently running item may write element `i`
    /// during this dispatch.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and element `i` must be owned by the calling item (no
    /// other item reads or writes it during this dispatch).
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }

    /// Mutable view of the element range `r`.
    ///
    /// # Safety
    ///
    /// `r` must lie within the buffer and be owned exclusively by the
    /// calling item for the duration of the dispatch.
    #[inline]
    #[allow(clippy::mut_from_ref)] // disjointness is the caller's contract
    pub unsafe fn range_mut(&self, r: Range<usize>) -> &mut [f64] {
        debug_assert!(r.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.len())
    }
}

/// One tile's serial dot product (identical to `matex_dense::dot`).
#[inline]
fn dot_tile(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Tiled dot product `xᵀ y` with deterministic tile-order combination.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(pool: &ParPool, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let n = x.len();
    let nt = tiles(n);
    if pool.threads() == 1 || n < PAR_MIN {
        let mut total = 0.0;
        for t in 0..nt {
            let r = tile_span(t, n);
            total += dot_tile(&x[r.clone()], &y[r]);
        }
        return total;
    }
    let mut partials = vec![0.0_f64; nt];
    {
        let slots = RawVec::new(&mut partials);
        pool.run(nt, &|t| {
            let r = tile_span(t, n);
            // SAFETY: tile `t` writes only slot `t`.
            unsafe { slots.set(t, dot_tile(&x[r.clone()], &y[r])) };
        });
    }
    let mut total = 0.0;
    for &p in &partials {
        total += p;
    }
    total
}

/// Tiled Euclidean norm `‖x‖₂`.
pub fn norm2(pool: &ParPool, x: &[f64]) -> f64 {
    dot(pool, x, x).sqrt()
}

/// All dots of `w` against a basis at once: `out[i] = wᵀ vs[i]`.
///
/// One dispatch covers every basis vector (the fused classical
/// Gram–Schmidt projection phase), with per-(tile, vector) partials
/// combined in tile order.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn multi_dot(pool: &ParPool, w: &[f64], vs: &[Vec<f64>], out: &mut [f64]) {
    let k = vs.len();
    assert_eq!(out.len(), k, "multi_dot: output length mismatch");
    let n = w.len();
    for v in vs {
        assert_eq!(v.len(), n, "multi_dot: basis length mismatch");
    }
    let nt = tiles(n);
    if pool.threads() == 1 || n * k.max(1) < PAR_MIN {
        for (i, v) in vs.iter().enumerate() {
            let mut total = 0.0;
            for t in 0..nt {
                let r = tile_span(t, n);
                total += dot_tile(&w[r.clone()], &v[r]);
            }
            out[i] = total;
        }
        return;
    }
    let mut partials = vec![0.0_f64; nt * k];
    {
        let slots = RawVec::new(&mut partials);
        pool.run(nt, &|t| {
            let r = tile_span(t, n);
            for (i, v) in vs.iter().enumerate() {
                // SAFETY: tile `t` writes only its `t * k + i` slots.
                unsafe { slots.set(t * k + i, dot_tile(&w[r.clone()], &v[r.clone()])) };
            }
        });
    }
    for (i, o) in out.iter_mut().enumerate() {
        let mut total = 0.0;
        for t in 0..nt {
            total += partials[t * k + i];
        }
        *o = total;
    }
}

/// Fused projection removal `w ← w − Σᵢ coef[i]·vs[i]`.
///
/// Each element of `w` subtracts its terms in ascending `i` order
/// regardless of tiling, so the result is invariant in the pool width.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn subtract_combination(pool: &ParPool, w: &mut [f64], vs: &[Vec<f64>], coef: &[f64]) {
    let k = vs.len();
    assert_eq!(coef.len(), k, "subtract_combination: coef length mismatch");
    let n = w.len();
    for v in vs {
        assert_eq!(v.len(), n, "subtract_combination: basis length mismatch");
    }
    let nt = tiles(n);
    let apply_tile = |w_tile: &mut [f64], r: Range<usize>| {
        for (i, v) in vs.iter().enumerate() {
            let c = coef[i];
            for (wk, vk) in w_tile.iter_mut().zip(&v[r.clone()]) {
                *wk -= c * vk;
            }
        }
    };
    if pool.threads() == 1 || n * k.max(1) < PAR_MIN {
        for t in 0..nt {
            let r = tile_span(t, n);
            apply_tile(&mut w[r.clone()], r);
        }
        return;
    }
    let shared = RawVec::new(w);
    pool.run(nt, &|t| {
        let r = tile_span(t, n);
        // SAFETY: tile `t` owns exactly the elements in `r`.
        let w_tile = unsafe { shared.range_mut(r.clone()) };
        apply_tile(w_tile, r);
    });
}

/// Batched basis combination `X ← Vᵀ·W`: for each of `k` weight columns
/// `w_j` (stored contiguously in `weights[j·m .. (j+1)·m]`), writes
/// `out[j·n .. (j+1)·n] = Σᵢ w_j[i] · vs[i]`.
///
/// This is the [`subtract_combination`] shape generalized to many
/// right-hand sides — the `T_e` kernel of MATEX's batched snapshot
/// evaluation. Each output element accumulates its terms in ascending
/// `i` order (zero weights skipped) regardless of tiling, so the result
/// is **bitwise-invariant in the pool width** and bitwise-identical to
/// the straightforward per-column serial loop.
///
/// # Panics
///
/// Panics on any length mismatch (`weights.len() != k·vs.len()`,
/// `out.len() != k·n`, or ragged basis vectors).
pub fn combine_columns(
    pool: &ParPool,
    vs: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    out: &mut [f64],
) {
    let m = vs.len();
    assert_eq!(
        weights.len(),
        k * m,
        "combine_columns: weights length mismatch"
    );
    let n = vs.first().map_or(0, Vec::len);
    for v in vs {
        assert_eq!(v.len(), n, "combine_columns: basis length mismatch");
    }
    assert_eq!(out.len(), k * n, "combine_columns: output length mismatch");
    let nt = tiles(n);
    let run_tile = |t: usize, out: &RawVec<'_>| {
        let r = tile_span(t, n);
        for j in 0..k {
            let w = &weights[j * m..(j + 1) * m];
            // SAFETY: tile `t` of column `j` is owned exclusively by
            // this item (tiles partition `0..n`, columns are disjoint).
            let x = unsafe { out.range_mut(j * n + r.start..j * n + r.end) };
            x.fill(0.0);
            for (i, v) in vs.iter().enumerate() {
                let wi = w[i];
                if wi == 0.0 {
                    continue;
                }
                for (xe, ve) in x.iter_mut().zip(&v[r.clone()]) {
                    *xe += wi * ve;
                }
            }
        }
    };
    if pool.threads() == 1 || n * k.max(1) < PAR_MIN {
        let shared = RawVec::new(out);
        for t in 0..nt {
            run_tile(t, &shared);
        }
        return;
    }
    let shared = RawVec::new(out);
    pool.run(nt, &|t| run_tile(t, &shared));
}

/// Tiled in-place division `w ← w / d` (element order preserved — the
/// divisor is *not* inverted, matching the serial normalization).
pub fn div_in_place(pool: &ParPool, w: &mut [f64], d: f64) {
    let n = w.len();
    let nt = tiles(n);
    if pool.threads() == 1 || n < PAR_MIN {
        for x in w.iter_mut() {
            *x /= d;
        }
        return;
    }
    let shared = RawVec::new(w);
    pool.run(nt, &|t| {
        let r = tile_span(t, n);
        for i in r {
            // SAFETY: tile `t` owns exactly the elements in its span.
            unsafe { shared.set(i, shared.get(i) / d) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 101) as f64) - 50.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| ((i * 53 % 97) as f64) * 0.25 - 12.0)
            .collect();
        (x, y)
    }

    #[test]
    fn dot_is_pool_width_invariant() {
        // Above PAR_MIN so the 4-thread pool genuinely dispatches.
        let (x, y) = vecs(3 * TILE + 123 + PAR_MIN);
        let serial = ParPool::serial();
        let wide = ParPool::new(4);
        let a = dot(&serial, &x, &y);
        let b = dot(&wide, &x, &y);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(norm2(&serial, &x).to_bits(), norm2(&wide, &x).to_bits());
    }

    #[test]
    fn multi_dot_matches_individual_dots() {
        let n = PAR_MIN + 2 * TILE + 7;
        let (w, _) = vecs(n);
        let vs: Vec<Vec<f64>> = (0..5)
            .map(|s| (0..n).map(|i| ((i * (s + 3) % 89) as f64) - 44.0).collect())
            .collect();
        let serial = ParPool::serial();
        let wide = ParPool::new(3);
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        multi_dot(&serial, &w, &vs, &mut a);
        multi_dot(&wide, &w, &vs, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(a[i].to_bits(), dot(&serial, &w, v).to_bits());
        }
    }

    #[test]
    fn subtract_combination_is_pool_width_invariant() {
        let n = PAR_MIN + TILE + 11;
        let (w0, _) = vecs(n);
        let vs: Vec<Vec<f64>> = (0..4)
            .map(|s| (0..n).map(|i| ((i + s) as f64).sin()).collect())
            .collect();
        let coef = [0.5, -1.25, 3.0, 0.125];
        let mut a = w0.clone();
        let mut b = w0.clone();
        subtract_combination(&ParPool::serial(), &mut a, &vs, &coef);
        subtract_combination(&ParPool::new(4), &mut b, &vs, &coef);
        assert!(a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn combine_columns_matches_naive_and_is_pool_width_invariant() {
        let n = PAR_MIN + TILE + 17;
        let m = 6;
        let k = 3;
        let vs: Vec<Vec<f64>> = (0..m)
            .map(|s| {
                (0..n)
                    .map(|i| ((i * (s + 2)) as f64 * 0.01).cos())
                    .collect()
            })
            .collect();
        let mut weights = vec![0.0; k * m];
        for (j, w) in weights.iter_mut().enumerate() {
            // Include an exact zero weight to exercise the skip.
            *w = if j == 4 {
                0.0
            } else {
                ((j * 31 % 13) as f64) - 6.0
            };
        }
        // Naive per-column reference: the legacy `KrylovBasis::eval` loop.
        let mut reference = vec![0.0; k * n];
        for j in 0..k {
            let x = &mut reference[j * n..(j + 1) * n];
            for (i, v) in vs.iter().enumerate() {
                let wi = weights[j * m + i];
                if wi == 0.0 {
                    continue;
                }
                for (xe, ve) in x.iter_mut().zip(v) {
                    *xe += wi * ve;
                }
            }
        }
        for threads in [1usize, 2, 4, 7] {
            let pool = ParPool::new(threads);
            let mut out = vec![f64::NAN; k * n];
            combine_columns(&pool, &vs, &weights, k, &mut out);
            assert!(
                reference
                    .iter()
                    .zip(&out)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "combine_columns diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn combine_columns_empty_shapes() {
        let pool = ParPool::serial();
        let mut out: Vec<f64> = Vec::new();
        combine_columns(&pool, &[], &[], 0, &mut out);
        // k = 0 with a nonempty basis: nothing to write.
        let vs = vec![vec![1.0, 2.0]];
        combine_columns(&pool, &vs, &[], 0, &mut out);
    }

    #[test]
    fn div_in_place_matches_serial() {
        let n = PAR_MIN + 5;
        let (w0, _) = vecs(n);
        let mut a = w0.clone();
        let mut b = w0;
        div_in_place(&ParPool::serial(), &mut a, 3.7);
        div_in_place(&ParPool::new(2), &mut b, 3.7);
        assert!(a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn tile_spans_cover_exactly() {
        for len in [0usize, 1, TILE - 1, TILE, TILE + 1, 5 * TILE + 3] {
            let mut covered = 0usize;
            for t in 0..tiles(len) {
                let r = tile_span(t, len);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }
}
