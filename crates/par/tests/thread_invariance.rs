//! Property-based proof of the thread-count-invariance contract:
//! `MATEX_THREADS ∈ {1, 2, 4, 7}` (expressed through the equivalent
//! `ParOptions::with_threads` API, since tests cannot safely mutate the
//! environment) must produce **bitwise-equal** results — for a raw
//! Krylov `expmv` evaluation and for a full `run_distributed` waveform —
//! because every tiled kernel reduces over fixed tile boundaries in a
//! deterministic order.

use matex_circuit::PdnBuilder;
use matex_core::TransientSpec;
use matex_dist::{run_distributed, DistributedOptions};
use matex_krylov::{build_basis, ExpmParams, ParApply, RationalOp};
use matex_par::{ParOptions, ParPool};
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use proptest::prelude::*;

/// The thread counts the ISSUE's invariance criterion names.
const THREADS: [usize; 4] = [1, 2, 4, 7];

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `expmv` outputs are bitwise-equal at every pool width.
    #[test]
    fn expmv_is_thread_count_invariant(
        n in 60usize..220,
        cap_spread in 1.0f64..50.0,
        coupling in 0.2f64..1.5,
        h in 0.01f64..0.4,
    ) {
        // RC-ladder style C (diagonal) and G (tridiagonal, dominant),
        // scaled O(1) so the shifted mapping stays well conditioned for
        // every drawn (n, spread, coupling, h).
        let mut ct = Vec::new();
        let mut gt = Vec::new();
        for i in 0..n {
            ct.push((i, i, 1.0 + cap_spread * ((i * 13 % 17) as f64) / 17.0));
            gt.push((i, i, 2.0 + 0.03 * i as f64));
            if i + 1 < n {
                gt.push((i, i + 1, -coupling));
                gt.push((i + 1, i, -coupling));
            }
        }
        let c = CsrMatrix::from_triplets(n, n, &ct);
        let g = CsrMatrix::from_triplets(n, n, &gt);
        let gamma = 0.05;
        let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factor(&shifted, &LuOptions::default()).unwrap();
        let sched = lu.solve_schedule();
        let v: Vec<f64> = (0..n).map(|i| ((i * 11 % 23) as f64) - 11.0).collect();
        let params = ExpmParams { tol: 1e-8, ..ExpmParams::default() };

        let mut reference: Option<Vec<u64>> = None;
        for threads in THREADS {
            let pool = ParPool::new(threads);
            let op = RationalOp::new(&lu, &c, gamma)
                .with_parallelism(ParApply { pool: &pool, sched: &sched });
            let out = build_basis(&op, &v, h, &params).unwrap();
            let x = out.basis.eval(h).unwrap();
            let x_bits = bits(&x);
            match &reference {
                None => reference = Some(x_bits),
                Some(r) => prop_assert_eq!(
                    r,
                    &x_bits,
                    "expmv diverged at {} threads (n = {})",
                    threads,
                    n
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched `Vᵀ·W` combination kernel is bitwise-equal at every
    /// pool width and to the naive per-column loop (the legacy
    /// `KrylovBasis::eval` combination).
    #[test]
    fn combine_columns_is_thread_count_invariant(
        n in 1usize..40_000,
        m in 1usize..9,
        k in 1usize..6,
        zero_every in 2usize..8,
        seed in 0usize..1000,
    ) {
        let vs: Vec<Vec<f64>> = (0..m)
            .map(|s| {
                (0..n)
                    .map(|i| (((i * (s + 2) + seed) % 211) as f64) * 0.03 - 3.0)
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (0..k * m)
            .map(|j| {
                if j % zero_every == 0 {
                    0.0 // exercise the zero-weight skip
                } else {
                    (((j * 17 + seed) % 23) as f64) - 11.0
                }
            })
            .collect();
        let mut reference = vec![0.0; k * n];
        for j in 0..k {
            let x = &mut reference[j * n..(j + 1) * n];
            for (i, v) in vs.iter().enumerate() {
                let wi = weights[j * m + i];
                if wi == 0.0 {
                    continue;
                }
                for (xe, ve) in x.iter_mut().zip(v) {
                    *xe += wi * ve;
                }
            }
        }
        for threads in THREADS {
            let pool = ParPool::new(threads);
            let mut out = vec![f64::NAN; k * n];
            matex_par::combine_columns(&pool, &vs, &weights, k, &mut out);
            prop_assert_eq!(
                bits(&reference),
                bits(&out),
                "combine_columns diverged at {} threads (n = {}, k = {})",
                threads,
                n,
                k
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full distributed waveforms are bitwise-equal at every kernel
    /// thread budget.
    #[test]
    fn run_distributed_is_thread_count_invariant(
        dim in 4usize..7,
        loads in 4usize..10,
        features in 2usize..4,
        seed in 0usize..1000,
    ) {
        let sys = PdnBuilder::new(dim, dim)
            .num_loads(loads)
            .num_features(features)
            .window(1e-9)
            .seed(seed as u64)
            .build()
            .unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 5e-11).unwrap();
        let mut reference: Option<Vec<Vec<f64>>> = None;
        for threads in THREADS {
            let opts = DistributedOptions {
                par: ParOptions::with_threads(threads),
                workers: Some(2),
                ..DistributedOptions::default()
            };
            let run = run_distributed(&sys, &spec, &opts).unwrap();
            let series = run.result.series().to_vec();
            match &reference {
                None => reference = Some(series),
                Some(r) => prop_assert_eq!(
                    r,
                    &series,
                    "distributed waveform diverged at {} kernel threads (seed {})",
                    threads,
                    seed
                ),
            }
        }
    }
}
