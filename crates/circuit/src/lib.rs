//! Linear-circuit substrate for the MATEX power-grid simulator.
//!
//! Covers everything between "a power grid exists" and "solve
//! `C x' = -G x + B u(t)`":
//!
//! * [`Netlist`] — R/C/L/V/I elements over named nodes,
//! * [`parse_netlist`] — SPICE-subset parser (IBM PG benchmark dialect),
//! * [`MnaSystem`] — modified nodal analysis assembly into sparse
//!   `G`, `C`, `B` (paper Eq. (1)),
//! * [`dc_operating_point`] — the initial condition,
//! * [`regularize_c`] — ε-regularization of singular `C` (needed by the
//!   MEXP baseline only; Sec. 3.3.3),
//! * [`RcMeshBuilder`] / [`PdnBuilder`] — synthetic Table-1 meshes and
//!   IBM-like grids (DESIGN.md §2 documents this substitution),
//! * [`ibmpg`] — real-benchmark interop and reference-solution files.
//!
//! # Example
//!
//! ```
//! use matex_circuit::{dc_operating_point, PdnBuilder};
//!
//! # fn main() -> Result<(), matex_circuit::CircuitError> {
//! let sys = PdnBuilder::new(8, 8).num_loads(12).build()?;
//! let x0 = dc_operating_point(&sys)?;
//! // Every grid node sits near VDD before the loads fire.
//! assert!(x0[..sys.num_nodes()].iter().all(|&v| v > 1.0));
//! # Ok(())
//! # }
//! ```

mod dc;
mod elements;
mod error;
mod mna;
mod netlist;
mod parser;
mod pdn;
mod regularize;

pub mod ibmpg;

pub use dc::{dc_operating_point, factor_g};
pub use elements::{Element, Node, SourceKind};
pub use error::CircuitError;
pub use mna::{MnaSystem, SourceInfo, ValueDiff};
pub use netlist::Netlist;
pub use parser::{parse_netlist, parse_value, ParsedCircuit, TranSpec};
pub use pdn::{PdnBuilder, RcMeshBuilder};
pub use regularize::{regularize_c, Regularized};
