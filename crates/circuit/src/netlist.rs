//! Netlist container and builder API.

use crate::{CircuitError, Element, Node, SourceKind};
use matex_waveform::Waveform;
use std::collections::HashMap;

/// A linear circuit netlist: named nodes plus R/C/L/V/I elements.
///
/// # Example
///
/// ```
/// use matex_circuit::Netlist;
/// use matex_waveform::Waveform;
///
/// # fn main() -> Result<(), matex_circuit::CircuitError> {
/// let mut nl = Netlist::new();
/// let vdd = nl.node("vdd");
/// let out = nl.node("out");
/// nl.add_vsource("vs", vdd, Netlist::ground(), Waveform::Dc(1.8))?;
/// nl.add_resistor("r1", vdd, out, 100.0)?;
/// nl.add_resistor("r2", out, Netlist::ground(), 100.0)?;
/// assert_eq!(nl.num_nodes(), 2);
/// assert_eq!(nl.num_elements(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>, // index 0 unused (ground)
    node_index: HashMap<String, Node>,
    elements: Vec<Element>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["0".to_string()],
            node_index: HashMap::new(),
            elements: Vec::new(),
        }
    }

    /// The ground (reference) node.
    pub fn ground() -> Node {
        Node::GROUND
    }

    /// Returns the node with the given name, creating it if needed.
    ///
    /// The names `"0"`, `"gnd"` and `"gnd!"` (case-insensitive) alias
    /// ground.
    pub fn node(&mut self, name: &str) -> Node {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" || lower == "gnd!" {
            return Node::GROUND;
        }
        if let Some(&n) = self.node_index.get(&lower) {
            return n;
        }
        let n = Node(self.node_names.len() as u32);
        self.node_names.push(lower.clone());
        self.node_index.insert(lower, n);
        n
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" || lower == "gnd!" {
            return Some(Node::GROUND);
        }
        self.node_index.get(&lower).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this netlist.
    pub fn node_name(&self, n: Node) -> &str {
        &self.node_names[n.0 as usize]
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Iterator over `(column, kind, waveform)` of every independent
    /// source, in B-matrix column order.
    pub fn sources(&self) -> impl Iterator<Item = (usize, SourceKind, &Waveform)> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                Element::VSource { waveform, .. } => Some((SourceKind::Voltage, waveform)),
                Element::ISource { waveform, .. } => Some((SourceKind::Current, waveform)),
                _ => None,
            })
            .enumerate()
            .map(|(i, (k, w))| (i, k, w))
    }

    /// Number of independent sources.
    pub fn num_sources(&self) -> usize {
        self.elements.iter().filter(|e| e.is_source()).count()
    }

    fn check_node(&self, n: Node) -> Result<(), CircuitError> {
        if (n.0 as usize) < self.node_names.len() {
            Ok(())
        } else {
            Err(CircuitError::InvalidNetlist(format!(
                "node handle {} does not belong to this netlist",
                n.0
            )))
        }
    }

    fn check_value(name: &str, what: &str, v: f64) -> Result<(), CircuitError> {
        if !v.is_finite() || v <= 0.0 {
            return Err(CircuitError::InvalidElement(format!(
                "{name}: {what} must be positive and finite, got {v}"
            )));
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive/non-finite resistance, foreign node handles,
    /// and elements with both terminals on the same node.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        ohms: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value(name, "resistance", ohms)?;
        if a == b {
            return Err(CircuitError::InvalidElement(format!(
                "{name}: both terminals on the same node"
            )));
        }
        self.elements.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_resistor`].
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        farads: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value(name, "capacitance", farads)?;
        if a == b {
            return Err(CircuitError::InvalidElement(format!(
                "{name}: both terminals on the same node"
            )));
        }
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        });
        Ok(())
    }

    /// Adds an inductor (introduces one branch-current unknown).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_resistor`].
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: Node,
        b: Node,
        henries: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_value(name, "inductance", henries)?;
        if a == b {
            return Err(CircuitError::InvalidElement(format!(
                "{name}: both terminals on the same node"
            )));
        }
        self.elements.push(Element::Inductor {
            name: name.to_string(),
            a,
            b,
            henries,
        });
        Ok(())
    }

    /// Adds an independent voltage source (introduces one branch-current
    /// unknown).
    ///
    /// # Errors
    ///
    /// Rejects foreign node handles and shorted terminals.
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: Node,
        neg: Node,
        waveform: Waveform,
    ) -> Result<(), CircuitError> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        if pos == neg {
            return Err(CircuitError::InvalidElement(format!(
                "{name}: both terminals on the same node"
            )));
        }
        self.elements.push(Element::VSource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
        });
        Ok(())
    }

    /// Adds an independent current source driving conventional current
    /// from `from` through the source into `to`.
    ///
    /// # Errors
    ///
    /// Rejects foreign node handles and shorted terminals.
    pub fn add_isource(
        &mut self,
        name: &str,
        from: Node,
        to: Node,
        waveform: Waveform,
    ) -> Result<(), CircuitError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(CircuitError::InvalidElement(format!(
                "{name}: both terminals on the same node"
            )));
        }
        self.elements.push(Element::ISource {
            name: name.to_string(),
            from,
            to,
            waveform,
        });
        Ok(())
    }

    /// All node names except ground, in index order.
    pub fn node_names(&self) -> impl Iterator<Item = &str> {
        self.node_names.iter().skip(1).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_and_aliases() {
        let mut nl = Netlist::new();
        let a = nl.node("A");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_eq!(nl.node("GND"), Node::GROUND);
        assert_eq!(nl.node("0"), Node::GROUND);
        assert_eq!(nl.num_nodes(), 1);
        assert_eq!(nl.node_name(a), "a");
    }

    #[test]
    fn find_node_does_not_create() {
        let mut nl = Netlist::new();
        assert!(nl.find_node("x").is_none());
        nl.node("x");
        assert!(nl.find_node("X").is_some());
    }

    #[test]
    fn rejects_bad_values() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.add_resistor("r", a, Node::GROUND, 0.0).is_err());
        assert!(nl.add_capacitor("c", a, Node::GROUND, -1e-12).is_err());
        assert!(nl.add_inductor("l", a, Node::GROUND, f64::NAN).is_err());
        assert!(nl.add_resistor("r", a, a, 1.0).is_err());
        assert_eq!(nl.num_elements(), 0);
    }

    #[test]
    fn rejects_foreign_node() {
        let mut nl = Netlist::new();
        let _ = nl.node("a");
        let foreign = Node(42);
        assert!(nl.add_resistor("r", foreign, Node::GROUND, 1.0).is_err());
    }

    #[test]
    fn sources_enumerated_in_order() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_isource("i1", a, Node::GROUND, Waveform::Dc(1.0))
            .unwrap();
        nl.add_resistor("r", a, b, 5.0).unwrap();
        nl.add_vsource("v1", b, Node::GROUND, Waveform::Dc(2.0))
            .unwrap();
        let kinds: Vec<SourceKind> = nl.sources().map(|(_, k, _)| k).collect();
        assert_eq!(kinds, vec![SourceKind::Current, SourceKind::Voltage]);
        assert_eq!(nl.num_sources(), 2);
    }
}
