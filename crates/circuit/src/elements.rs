//! Circuit node and element types.

use matex_waveform::Waveform;

/// A circuit node handle.
///
/// `Node::GROUND` is the reference node (SPICE node `0`); all other nodes
/// are indexed from 1 in creation order. Node handles are only meaningful
/// within the [`Netlist`](crate::Netlist) that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) u32);

impl Node {
    /// The reference (ground) node.
    pub const GROUND: Node = Node(0);

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// The MNA matrix row/column of this node, or `None` for ground.
    pub fn mna_index(self) -> Option<usize> {
        if self.is_ground() {
            None
        } else {
            Some(self.0 as usize - 1)
        }
    }
}

/// A two-terminal circuit element.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads (> 0).
        farads: f64,
    },
    /// Linear inductor between `a` and `b` (adds one branch-current
    /// unknown).
    Inductor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Inductance in henries (> 0).
        henries: f64,
    },
    /// Independent voltage source from `pos` to `neg` (adds one
    /// branch-current unknown).
    VSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: Node,
        /// Negative terminal.
        neg: Node,
        /// Source waveform, volts.
        waveform: Waveform,
    },
    /// Independent current source driving conventional current from
    /// `from` through the source into `to`.
    ISource {
        /// Instance name.
        name: String,
        /// Terminal the current leaves.
        from: Node,
        /// Terminal the current enters.
        to: Node,
        /// Source waveform, amperes.
        waveform: Waveform,
    },
}

impl Element {
    /// Instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. } => name,
        }
    }

    /// `true` for independent sources (V or I).
    pub fn is_source(&self) -> bool {
        matches!(self, Element::VSource { .. } | Element::ISource { .. })
    }
}

/// Which kind of independent source a B-matrix column belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Voltage source (supply rails in a PDN).
    Voltage,
    /// Current source (switching loads in a PDN).
    Current,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_properties() {
        assert!(Node::GROUND.is_ground());
        assert_eq!(Node::GROUND.mna_index(), None);
        assert_eq!(Node(3).mna_index(), Some(2));
    }

    #[test]
    fn element_names() {
        let r = Element::Resistor {
            name: "r1".into(),
            a: Node(1),
            b: Node::GROUND,
            ohms: 10.0,
        };
        assert_eq!(r.name(), "r1");
        assert!(!r.is_source());
        let i = Element::ISource {
            name: "iload".into(),
            from: Node(1),
            to: Node::GROUND,
            waveform: Waveform::Dc(1e-3),
        };
        assert!(i.is_source());
    }
}
