//! Modified nodal analysis (MNA) assembly.
//!
//! Produces the system of the paper's Eq. (1):
//!
//! ```text
//! C x'(t) = -G x(t) + B u(t)
//! ```
//!
//! with unknowns `x = [node voltages | inductor currents | vsource
//! currents]` and one input column per independent source.

use crate::{CircuitError, Element, Netlist, SourceKind};
use matex_sparse::{CooMatrix, CsrMatrix};
use matex_waveform::{Fnv64, Waveform};

/// Metadata for one input (one column of `B`).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceInfo {
    /// Instance name from the netlist.
    pub name: String,
    /// Voltage or current source.
    pub kind: SourceKind,
    /// The source waveform.
    pub waveform: Waveform,
}

/// The assembled MNA system `C x' = -G x + B u(t)`.
///
/// # Example
///
/// ```
/// use matex_circuit::{Netlist, MnaSystem};
/// use matex_waveform::Waveform;
///
/// # fn main() -> Result<(), matex_circuit::CircuitError> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))?;
/// nl.add_resistor("r1", a, Netlist::ground(), 1000.0)?;
/// nl.add_capacitor("c1", a, Netlist::ground(), 1e-12)?;
/// let sys = MnaSystem::assemble(&nl)?;
/// assert_eq!(sys.dim(), 1);
/// assert_eq!(sys.g().get(0, 0), 1e-3); // 1/R
/// assert_eq!(sys.c().get(0, 0), 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MnaSystem {
    g: CsrMatrix,
    c: CsrMatrix,
    b: CsrMatrix,
    sources: Vec<SourceInfo>,
    num_nodes: usize,
    num_inductors: usize,
    num_vsources: usize,
    row_names: Vec<String>,
}

impl MnaSystem {
    /// Assembles the MNA system from a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] for an empty netlist
    /// (nothing to simulate).
    pub fn assemble(netlist: &Netlist) -> Result<Self, CircuitError> {
        let nv = netlist.num_nodes();
        if nv == 0 {
            return Err(CircuitError::InvalidNetlist(
                "netlist has no non-ground nodes".into(),
            ));
        }
        let mut nl_count = 0usize;
        let mut vs_count = 0usize;
        for e in netlist.elements() {
            match e {
                Element::Inductor { .. } => nl_count += 1,
                Element::VSource { .. } => vs_count += 1,
                _ => {}
            }
        }
        let dim = nv + nl_count + vs_count;
        let num_sources = netlist.num_sources();
        let mut g = CooMatrix::with_capacity(dim, dim, 4 * netlist.num_elements());
        let mut c = CooMatrix::with_capacity(dim, dim, 4 * netlist.num_elements());
        let mut b = CooMatrix::with_capacity(dim, num_sources, 2 * num_sources);
        let mut sources = Vec::with_capacity(num_sources);
        let mut row_names: Vec<String> = netlist.node_names().map(|s| s.to_string()).collect();

        let mut l_row = nv; // next inductor branch row
        let mut v_row = nv + nl_count; // next vsource branch row
        let mut src_col = 0usize;

        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b: nb, ohms, .. } => {
                    let gval = 1.0 / ohms;
                    stamp_conductance(&mut g, a.mna_index(), nb.mna_index(), gval);
                }
                Element::Capacitor {
                    a, b: nb, farads, ..
                } => {
                    stamp_conductance(&mut c, a.mna_index(), nb.mna_index(), *farads);
                }
                Element::Inductor {
                    a,
                    b: nb,
                    henries,
                    name,
                } => {
                    let row = l_row;
                    l_row += 1;
                    row_names.push(format!("i({name})"));
                    // KCL: branch current leaves `a`, enters `b`.
                    if let Some(ia) = a.mna_index() {
                        g.push(ia, row, 1.0);
                    }
                    if let Some(ib) = nb.mna_index() {
                        g.push(ib, row, -1.0);
                    }
                    // Branch: L di/dt = v_a - v_b  →  C[row,row] = L,
                    // G[row, a] = -1, G[row, b] = +1.
                    c.push(row, row, *henries);
                    if let Some(ia) = a.mna_index() {
                        g.push(row, ia, -1.0);
                    }
                    if let Some(ib) = nb.mna_index() {
                        g.push(row, ib, 1.0);
                    }
                }
                Element::VSource {
                    pos,
                    neg,
                    waveform,
                    name,
                } => {
                    let row = v_row;
                    v_row += 1;
                    row_names.push(format!("i({name})"));
                    // KCL: branch current leaves `pos`, enters `neg`.
                    if let Some(ip) = pos.mna_index() {
                        g.push(ip, row, 1.0);
                    }
                    if let Some(in_) = neg.mna_index() {
                        g.push(in_, row, -1.0);
                    }
                    // Branch: v_pos - v_neg = E(t)  →  G[row, pos] = 1,
                    // G[row, neg] = -1, B[row, col] = 1.
                    if let Some(ip) = pos.mna_index() {
                        g.push(row, ip, 1.0);
                    }
                    if let Some(in_) = neg.mna_index() {
                        g.push(row, in_, -1.0);
                    }
                    b.push(row, src_col, 1.0);
                    sources.push(SourceInfo {
                        name: name.clone(),
                        kind: SourceKind::Voltage,
                        waveform: waveform.clone(),
                    });
                    src_col += 1;
                }
                Element::ISource {
                    from,
                    to,
                    waveform,
                    name,
                } => {
                    // Injection: -u at `from`, +u at `to`.
                    if let Some(i) = from.mna_index() {
                        b.push(i, src_col, -1.0);
                    }
                    if let Some(i) = to.mna_index() {
                        b.push(i, src_col, 1.0);
                    }
                    sources.push(SourceInfo {
                        name: name.clone(),
                        kind: SourceKind::Current,
                        waveform: waveform.clone(),
                    });
                    src_col += 1;
                }
            }
        }
        Ok(MnaSystem {
            g: g.to_csr(),
            c: c.to_csr(),
            b: b.to_csr(),
            sources,
            num_nodes: nv,
            num_inductors: nl_count,
            num_vsources: vs_count,
            row_names,
        })
    }

    /// System dimension (nodes + inductor currents + vsource currents).
    pub fn dim(&self) -> usize {
        self.num_nodes + self.num_inductors + self.num_vsources
    }

    /// Number of non-ground node unknowns.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of inductor branch unknowns.
    pub fn num_inductors(&self) -> usize {
        self.num_inductors
    }

    /// Number of voltage-source branch unknowns.
    pub fn num_vsources(&self) -> usize {
        self.num_vsources
    }

    /// The conductance matrix `G`.
    pub fn g(&self) -> &CsrMatrix {
        &self.g
    }

    /// The capacitance/inductance matrix `C`.
    pub fn c(&self) -> &CsrMatrix {
        &self.c
    }

    /// The input selector matrix `B` (`dim × num_sources`).
    pub fn b(&self) -> &CsrMatrix {
        &self.b
    }

    /// Per-column source metadata.
    pub fn sources(&self) -> &[SourceInfo] {
        &self.sources
    }

    /// Number of independent sources (columns of `B`).
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// The waveforms in column order (cloned).
    pub fn source_waveforms(&self) -> Vec<Waveform> {
        self.sources.iter().map(|s| s.waveform.clone()).collect()
    }

    /// Evaluates the full input vector `u(t)`.
    pub fn input_at(&self, t: f64) -> Vec<f64> {
        self.sources.iter().map(|s| s.waveform.value(t)).collect()
    }

    /// Evaluates `u(t)` with only the listed source columns active; all
    /// other entries are zero. This is the superposition mask used by
    /// distributed MATEX subtasks.
    pub fn input_masked_at(&self, t: f64, members: &[usize]) -> Vec<f64> {
        let mut u = vec![0.0; self.sources.len()];
        self.input_masked_into(t, members, &mut u);
        u
    }

    /// Allocation-free variant of [`MnaSystem::input_at`].
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != num_sources()`.
    pub fn input_into(&self, t: f64, u: &mut [f64]) {
        assert_eq!(u.len(), self.sources.len(), "input_into: u length mismatch");
        for (slot, s) in u.iter_mut().zip(&self.sources) {
            *slot = s.waveform.value(t);
        }
    }

    /// Allocation-free variant of [`MnaSystem::input_masked_at`].
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != num_sources()`.
    pub fn input_masked_into(&self, t: f64, members: &[usize], u: &mut [f64]) {
        assert_eq!(
            u.len(),
            self.sources.len(),
            "input_masked_into: u length mismatch"
        );
        u.fill(0.0);
        for &m in members {
            u[m] = self.sources[m].waveform.value(t);
        }
    }

    /// Computes `B u(t)` into a dense right-hand-side vector.
    pub fn bu_at(&self, t: f64) -> Vec<f64> {
        self.b.matvec(&self.input_at(t))
    }

    /// Human-readable name of an unknown (node name or `i(branch)`).
    ///
    /// # Panics
    ///
    /// Panics if `row >= dim()`.
    pub fn row_name(&self, row: usize) -> &str {
        &self.row_names[row]
    }

    /// Row index of the node with the given (lower-case) name, if any.
    pub fn node_row(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.row_names[..self.num_nodes]
            .iter()
            .position(|n| *n == lower)
    }

    /// Rows of `C` that are entirely zero (structurally singular part).
    ///
    /// Nonempty for circuits with cap-less nodes or voltage sources; the
    /// paper's MEXP variant requires regularization in that case, while
    /// I-MATEX / R-MATEX do not (Sec. 3.3.3).
    pub fn zero_c_rows(&self) -> Vec<usize> {
        (0..self.dim())
            .filter(|&r| self.c.row_values(r).iter().all(|&v| v == 0.0))
            .collect()
    }

    /// Canonical fingerprint of the MNA *sparsity structure*: dimensions
    /// plus the nonzero patterns of `G`, `C`, and `B`.
    ///
    /// Two systems with equal pattern fingerprints admit the same
    /// symbolic LU analyses and solve schedules — this is the cache key
    /// a scenario engine uses to amortize structural work across jobs
    /// whose element *values* or source waveforms differ.
    pub fn pattern_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.num_nodes);
        h.write_usize(self.num_inductors);
        h.write_usize(self.num_vsources);
        h.write_usize(self.sources.len());
        for m in [&self.g, &self.c, &self.b] {
            hash_pattern(m, &mut h);
        }
        h.finish()
    }

    /// Fingerprint of structure *and* numeric content of `G`, `C`, `B`
    /// (bit patterns of every stored value on top of
    /// [`MnaSystem::pattern_fingerprint`]). Source waveforms are **not**
    /// included — factorizations and DC matrices depend only on the
    /// matrices, so scenario overrides that rescale or swap waveforms
    /// keep this fingerprint (see [`MnaSystem::source_fingerprint`]).
    pub fn value_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.pattern_fingerprint());
        for m in [&self.g, &self.c, &self.b] {
            for r in 0..m.nrows() {
                h.write_f64s(m.row_values(r));
            }
        }
        h.finish()
    }

    /// Fingerprint of the input side: every source's kind and waveform
    /// parameters, in column order. Together with
    /// [`MnaSystem::value_fingerprint`] this identifies a transient
    /// problem completely (up to the analysis spec).
    pub fn source_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.sources.len());
        for s in &self.sources {
            h.write_u8(match s.kind {
                SourceKind::Voltage => 0,
                SourceKind::Current => 1,
            });
            s.waveform.fingerprint(&mut h);
        }
        h.finish()
    }

    /// A copy of this system with the source waveforms replaced, column
    /// by column. Matrices, source kinds, and names are untouched, so
    /// the structural and value fingerprints are preserved — the
    /// scenario-override primitive of the service layer.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when the waveform count
    /// differs from [`MnaSystem::num_sources`].
    pub fn with_source_waveforms(&self, waveforms: Vec<Waveform>) -> Result<Self, CircuitError> {
        if waveforms.len() != self.sources.len() {
            return Err(CircuitError::InvalidNetlist(format!(
                "waveform rebind: {} waveforms for {} sources",
                waveforms.len(),
                self.sources.len()
            )));
        }
        let mut out = self.clone();
        for (s, w) in out.sources.iter_mut().zip(waveforms) {
            s.waveform = w;
        }
        Ok(out)
    }

    /// A copy of this system with every source waveform scaled by `k`
    /// ([`Waveform::scaled`]): the uniform load-scaling scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when `k` is not finite.
    pub fn with_scaled_sources(&self, k: f64) -> Result<Self, CircuitError> {
        let scaled: Result<Vec<Waveform>, _> =
            self.sources.iter().map(|s| s.waveform.scaled(k)).collect();
        let scaled = scaled
            .map_err(|e| CircuitError::InvalidNetlist(format!("source scaling failed: {e}")))?;
        self.with_source_waveforms(scaled)
    }
}

/// Feeds a CSR matrix's shape and nonzero pattern into a hasher.
fn hash_pattern(m: &CsrMatrix, h: &mut Fnv64) {
    h.write_usize(m.nrows());
    h.write_usize(m.ncols());
    h.write_usizes(m.indptr());
    for r in 0..m.nrows() {
        h.write_usizes(m.row_indices(r));
    }
}

/// Symmetric two-terminal stamp into a COO matrix.
fn stamp_conductance(m: &mut CooMatrix, a: Option<usize>, b: Option<usize>, val: f64) {
    if let Some(i) = a {
        m.push(i, i, val);
    }
    if let Some(j) = b {
        m.push(j, j, val);
    }
    if let (Some(i), Some(j)) = (a, b) {
        m.push(i, j, -val);
        m.push(j, i, -val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;
    use matex_sparse::{LuOptions, SparseLu};

    #[test]
    fn voltage_divider_dc() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.add_vsource("vs", vdd, Netlist::ground(), Waveform::Dc(1.8))
            .unwrap();
        nl.add_resistor("r1", vdd, out, 100.0).unwrap();
        nl.add_resistor("r2", out, Netlist::ground(), 100.0)
            .unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.dim(), 3);
        // Solve G x = B u(0).
        let lu = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let x = lu.solve(&sys.bu_at(0.0));
        let out_row = sys.node_row("out").unwrap();
        let vdd_row = sys.node_row("vdd").unwrap();
        assert!((x[vdd_row] - 1.8).abs() < 1e-12);
        assert!((x[out_row] - 0.9).abs() < 1e-12);
        // Source current = -9 mA (flows out of + terminal).
        assert!((x[2] + 0.009).abs() < 1e-12);
    }

    #[test]
    fn current_source_direction() {
        // 1 mA pushed from ground into node a with 1 kΩ to ground: +1 V.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r1", a, Netlist::ground(), 1000.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let lu = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let x = lu.solve(&sys.bu_at(0.0));
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inductor_is_dc_short() {
        // V source -> R -> L -> ground: at DC the inductor row forces
        // v_mid = 0 ... actually v_a - v_b = 0 across the inductor.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.add_vsource("v", a, Netlist::ground(), Waveform::Dc(1.0))
            .unwrap();
        nl.add_resistor("r", a, m, 50.0).unwrap();
        nl.add_inductor("l", m, Netlist::ground(), 1e-9).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.dim(), 4); // 2 nodes + 1 inductor + 1 vsource
        let lu = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let x = lu.solve(&sys.bu_at(0.0));
        let m_row = sys.node_row("m").unwrap();
        assert!(x[m_row].abs() < 1e-12, "inductor should short m to ground");
        // Current through the inductor = 1/50 A.
        let il_row = sys.num_nodes(); // first branch row
        assert!((x[il_row] - 0.02).abs() < 1e-12);
    }

    #[test]
    fn masked_input_zeroes_others() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1.0))
            .unwrap();
        nl.add_isource("i2", Netlist::ground(), a, Waveform::Dc(2.0))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.input_at(0.0), vec![1.0, 2.0]);
        assert_eq!(sys.input_masked_at(0.0, &[1]), vec![0.0, 2.0]);
    }

    #[test]
    fn zero_c_rows_reported() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        nl.add_resistor("r", a, b, 1.0).unwrap();
        nl.add_resistor("r2", b, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        // Node b has no capacitor: its C row is empty.
        assert_eq!(sys.zero_c_rows(), vec![1]);
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist::new();
        assert!(MnaSystem::assemble(&nl).is_err());
    }

    #[test]
    fn fingerprints_separate_structure_values_and_sources() {
        let build = |ohms: f64, amps: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(amps))
                .unwrap();
            nl.add_resistor("r1", a, Netlist::ground(), ohms).unwrap();
            nl.add_capacitor("c1", a, Netlist::ground(), 1e-12).unwrap();
            MnaSystem::assemble(&nl).unwrap()
        };
        let base = build(1000.0, 1e-3);
        let same = build(1000.0, 1e-3);
        assert_eq!(base.pattern_fingerprint(), same.pattern_fingerprint());
        assert_eq!(base.value_fingerprint(), same.value_fingerprint());
        assert_eq!(base.source_fingerprint(), same.source_fingerprint());
        // Different element value: same pattern, different values.
        let revalued = build(500.0, 1e-3);
        assert_eq!(base.pattern_fingerprint(), revalued.pattern_fingerprint());
        assert_ne!(base.value_fingerprint(), revalued.value_fingerprint());
        // Different waveform: matrices identical, sources differ.
        let redriven = build(1000.0, 2e-3);
        assert_eq!(base.value_fingerprint(), redriven.value_fingerprint());
        assert_ne!(base.source_fingerprint(), redriven.source_fingerprint());
    }

    #[test]
    fn scenario_rebind_preserves_matrix_fingerprints() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r1", a, Netlist::ground(), 1000.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let scaled = sys.with_scaled_sources(2.0).unwrap();
        assert_eq!(sys.value_fingerprint(), scaled.value_fingerprint());
        assert_ne!(sys.source_fingerprint(), scaled.source_fingerprint());
        assert_eq!(scaled.input_at(0.0), vec![2e-3]);
        // Rebind validates the column count.
        assert!(sys.with_source_waveforms(vec![]).is_err());
        let swapped = sys.with_source_waveforms(vec![Waveform::Dc(5.0)]).unwrap();
        assert_eq!(swapped.input_at(0.0), vec![5.0]);
        assert!(sys.with_scaled_sources(f64::INFINITY).is_err());
    }

    #[test]
    fn row_names_cover_branches() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_vsource("vs", a, Netlist::ground(), Waveform::Dc(1.0))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.row_name(0), "a");
        assert_eq!(sys.row_name(1), "i(vs)");
    }
}
