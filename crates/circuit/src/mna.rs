//! Modified nodal analysis (MNA) assembly.
//!
//! Produces the system of the paper's Eq. (1):
//!
//! ```text
//! C x'(t) = -G x(t) + B u(t)
//! ```
//!
//! with unknowns `x = [node voltages | inductor currents | vsource
//! currents]` and one input column per independent source.

use crate::{CircuitError, Element, Netlist, SourceKind};
use matex_sparse::{CooMatrix, CsrMatrix, SparseCol};
use matex_waveform::{Fnv64, Waveform};

/// Metadata for one input (one column of `B`).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceInfo {
    /// Instance name from the netlist.
    pub name: String,
    /// Voltage or current source.
    pub kind: SourceKind,
    /// The source waveform.
    pub waveform: Waveform,
}

/// The assembled MNA system `C x' = -G x + B u(t)`.
///
/// # Example
///
/// ```
/// use matex_circuit::{Netlist, MnaSystem};
/// use matex_waveform::Waveform;
///
/// # fn main() -> Result<(), matex_circuit::CircuitError> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))?;
/// nl.add_resistor("r1", a, Netlist::ground(), 1000.0)?;
/// nl.add_capacitor("c1", a, Netlist::ground(), 1e-12)?;
/// let sys = MnaSystem::assemble(&nl)?;
/// assert_eq!(sys.dim(), 1);
/// assert_eq!(sys.g().get(0, 0), 1e-3); // 1/R
/// assert_eq!(sys.c().get(0, 0), 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MnaSystem {
    g: CsrMatrix,
    c: CsrMatrix,
    b: CsrMatrix,
    sources: Vec<SourceInfo>,
    num_nodes: usize,
    num_inductors: usize,
    num_vsources: usize,
    row_names: Vec<String>,
}

impl MnaSystem {
    /// Assembles the MNA system from a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] for an empty netlist
    /// (nothing to simulate).
    pub fn assemble(netlist: &Netlist) -> Result<Self, CircuitError> {
        let nv = netlist.num_nodes();
        if nv == 0 {
            return Err(CircuitError::InvalidNetlist(
                "netlist has no non-ground nodes".into(),
            ));
        }
        let mut nl_count = 0usize;
        let mut vs_count = 0usize;
        for e in netlist.elements() {
            match e {
                Element::Inductor { .. } => nl_count += 1,
                Element::VSource { .. } => vs_count += 1,
                _ => {}
            }
        }
        let dim = nv + nl_count + vs_count;
        let num_sources = netlist.num_sources();
        let mut g = CooMatrix::with_capacity(dim, dim, 4 * netlist.num_elements());
        let mut c = CooMatrix::with_capacity(dim, dim, 4 * netlist.num_elements());
        let mut b = CooMatrix::with_capacity(dim, num_sources, 2 * num_sources);
        let mut sources = Vec::with_capacity(num_sources);
        let mut row_names: Vec<String> = netlist.node_names().map(|s| s.to_string()).collect();

        let mut l_row = nv; // next inductor branch row
        let mut v_row = nv + nl_count; // next vsource branch row
        let mut src_col = 0usize;

        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b: nb, ohms, .. } => {
                    let gval = 1.0 / ohms;
                    stamp_conductance(&mut g, a.mna_index(), nb.mna_index(), gval);
                }
                Element::Capacitor {
                    a, b: nb, farads, ..
                } => {
                    stamp_conductance(&mut c, a.mna_index(), nb.mna_index(), *farads);
                }
                Element::Inductor {
                    a,
                    b: nb,
                    henries,
                    name,
                } => {
                    let row = l_row;
                    l_row += 1;
                    row_names.push(format!("i({name})"));
                    // KCL: branch current leaves `a`, enters `b`.
                    if let Some(ia) = a.mna_index() {
                        g.push(ia, row, 1.0);
                    }
                    if let Some(ib) = nb.mna_index() {
                        g.push(ib, row, -1.0);
                    }
                    // Branch: L di/dt = v_a - v_b  →  C[row,row] = L,
                    // G[row, a] = -1, G[row, b] = +1.
                    c.push(row, row, *henries);
                    if let Some(ia) = a.mna_index() {
                        g.push(row, ia, -1.0);
                    }
                    if let Some(ib) = nb.mna_index() {
                        g.push(row, ib, 1.0);
                    }
                }
                Element::VSource {
                    pos,
                    neg,
                    waveform,
                    name,
                } => {
                    let row = v_row;
                    v_row += 1;
                    row_names.push(format!("i({name})"));
                    // KCL: branch current leaves `pos`, enters `neg`.
                    if let Some(ip) = pos.mna_index() {
                        g.push(ip, row, 1.0);
                    }
                    if let Some(in_) = neg.mna_index() {
                        g.push(in_, row, -1.0);
                    }
                    // Branch: v_pos - v_neg = E(t)  →  G[row, pos] = 1,
                    // G[row, neg] = -1, B[row, col] = 1.
                    if let Some(ip) = pos.mna_index() {
                        g.push(row, ip, 1.0);
                    }
                    if let Some(in_) = neg.mna_index() {
                        g.push(row, in_, -1.0);
                    }
                    b.push(row, src_col, 1.0);
                    sources.push(SourceInfo {
                        name: name.clone(),
                        kind: SourceKind::Voltage,
                        waveform: waveform.clone(),
                    });
                    src_col += 1;
                }
                Element::ISource {
                    from,
                    to,
                    waveform,
                    name,
                } => {
                    // Injection: -u at `from`, +u at `to`.
                    if let Some(i) = from.mna_index() {
                        b.push(i, src_col, -1.0);
                    }
                    if let Some(i) = to.mna_index() {
                        b.push(i, src_col, 1.0);
                    }
                    sources.push(SourceInfo {
                        name: name.clone(),
                        kind: SourceKind::Current,
                        waveform: waveform.clone(),
                    });
                    src_col += 1;
                }
            }
        }
        Ok(MnaSystem {
            g: g.to_csr(),
            c: c.to_csr(),
            b: b.to_csr(),
            sources,
            num_nodes: nv,
            num_inductors: nl_count,
            num_vsources: vs_count,
            row_names,
        })
    }

    /// System dimension (nodes + inductor currents + vsource currents).
    pub fn dim(&self) -> usize {
        self.num_nodes + self.num_inductors + self.num_vsources
    }

    /// Number of non-ground node unknowns.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of inductor branch unknowns.
    pub fn num_inductors(&self) -> usize {
        self.num_inductors
    }

    /// Number of voltage-source branch unknowns.
    pub fn num_vsources(&self) -> usize {
        self.num_vsources
    }

    /// The conductance matrix `G`.
    pub fn g(&self) -> &CsrMatrix {
        &self.g
    }

    /// The capacitance/inductance matrix `C`.
    pub fn c(&self) -> &CsrMatrix {
        &self.c
    }

    /// The input selector matrix `B` (`dim × num_sources`).
    pub fn b(&self) -> &CsrMatrix {
        &self.b
    }

    /// Per-column source metadata.
    pub fn sources(&self) -> &[SourceInfo] {
        &self.sources
    }

    /// Number of independent sources (columns of `B`).
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// The waveforms in column order (cloned).
    pub fn source_waveforms(&self) -> Vec<Waveform> {
        self.sources.iter().map(|s| s.waveform.clone()).collect()
    }

    /// Evaluates the full input vector `u(t)`.
    pub fn input_at(&self, t: f64) -> Vec<f64> {
        self.sources.iter().map(|s| s.waveform.value(t)).collect()
    }

    /// Evaluates `u(t)` with only the listed source columns active; all
    /// other entries are zero. This is the superposition mask used by
    /// distributed MATEX subtasks.
    pub fn input_masked_at(&self, t: f64, members: &[usize]) -> Vec<f64> {
        let mut u = vec![0.0; self.sources.len()];
        self.input_masked_into(t, members, &mut u);
        u
    }

    /// Allocation-free variant of [`MnaSystem::input_at`].
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != num_sources()`.
    pub fn input_into(&self, t: f64, u: &mut [f64]) {
        assert_eq!(u.len(), self.sources.len(), "input_into: u length mismatch");
        for (slot, s) in u.iter_mut().zip(&self.sources) {
            *slot = s.waveform.value(t);
        }
    }

    /// Allocation-free variant of [`MnaSystem::input_masked_at`].
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != num_sources()`.
    pub fn input_masked_into(&self, t: f64, members: &[usize], u: &mut [f64]) {
        assert_eq!(
            u.len(),
            self.sources.len(),
            "input_masked_into: u length mismatch"
        );
        u.fill(0.0);
        for &m in members {
            u[m] = self.sources[m].waveform.value(t);
        }
    }

    /// Computes `B u(t)` into a dense right-hand-side vector.
    pub fn bu_at(&self, t: f64) -> Vec<f64> {
        self.b.matvec(&self.input_at(t))
    }

    /// Human-readable name of an unknown (node name or `i(branch)`).
    ///
    /// # Panics
    ///
    /// Panics if `row >= dim()`.
    pub fn row_name(&self, row: usize) -> &str {
        &self.row_names[row]
    }

    /// Row index of the node with the given (lower-case) name, if any.
    pub fn node_row(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.row_names[..self.num_nodes]
            .iter()
            .position(|n| *n == lower)
    }

    /// Rows of `C` that are entirely zero (structurally singular part).
    ///
    /// Nonempty for circuits with cap-less nodes or voltage sources; the
    /// paper's MEXP variant requires regularization in that case, while
    /// I-MATEX / R-MATEX do not (Sec. 3.3.3).
    pub fn zero_c_rows(&self) -> Vec<usize> {
        (0..self.dim())
            .filter(|&r| self.c.row_values(r).iter().all(|&v| v == 0.0))
            .collect()
    }

    /// Canonical fingerprint of the MNA *sparsity structure*: dimensions
    /// plus the nonzero patterns of `G`, `C`, and `B`.
    ///
    /// Two systems with equal pattern fingerprints admit the same
    /// symbolic LU analyses and solve schedules — this is the cache key
    /// a scenario engine uses to amortize structural work across jobs
    /// whose element *values* or source waveforms differ.
    pub fn pattern_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.num_nodes);
        h.write_usize(self.num_inductors);
        h.write_usize(self.num_vsources);
        h.write_usize(self.sources.len());
        for m in [&self.g, &self.c, &self.b] {
            hash_pattern(m, &mut h);
        }
        h.finish()
    }

    /// Fingerprint of structure *and* numeric content of `G`, `C`, `B`
    /// (bit patterns of every stored value on top of
    /// [`MnaSystem::pattern_fingerprint`]). Source waveforms are **not**
    /// included — factorizations and DC matrices depend only on the
    /// matrices, so scenario overrides that rescale or swap waveforms
    /// keep this fingerprint (see [`MnaSystem::source_fingerprint`]).
    pub fn value_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.pattern_fingerprint());
        for m in [&self.g, &self.c, &self.b] {
            for r in 0..m.nrows() {
                h.write_f64s(m.row_values(r));
            }
        }
        h.finish()
    }

    /// Fingerprint of the input side: every source's kind and waveform
    /// parameters, in column order. Together with
    /// [`MnaSystem::value_fingerprint`] this identifies a transient
    /// problem completely (up to the analysis spec).
    pub fn source_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.sources.len());
        for s in &self.sources {
            h.write_u8(match s.kind {
                SourceKind::Voltage => 0,
                SourceKind::Current => 1,
            });
            s.waveform.fingerprint(&mut h);
        }
        h.finish()
    }

    /// A copy of this system with the source waveforms replaced, column
    /// by column. Matrices, source kinds, and names are untouched, so
    /// the structural and value fingerprints are preserved — the
    /// scenario-override primitive of the service layer.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when the waveform count
    /// differs from [`MnaSystem::num_sources`].
    pub fn with_source_waveforms(&self, waveforms: Vec<Waveform>) -> Result<Self, CircuitError> {
        if waveforms.len() != self.sources.len() {
            return Err(CircuitError::InvalidNetlist(format!(
                "waveform rebind: {} waveforms for {} sources",
                waveforms.len(),
                self.sources.len()
            )));
        }
        let mut out = self.clone();
        for (s, w) in out.sources.iter_mut().zip(waveforms) {
            s.waveform = w;
        }
        Ok(out)
    }

    /// A copy of this system with every source waveform scaled by `k`
    /// ([`Waveform::scaled`]): the uniform load-scaling scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when `k` is not finite.
    pub fn with_scaled_sources(&self, k: f64) -> Result<Self, CircuitError> {
        let scaled: Result<Vec<Waveform>, _> =
            self.sources.iter().map(|s| s.waveform.scaled(k)).collect();
        let scaled = scaled
            .map_err(|e| CircuitError::InvalidNetlist(format!("source scaling failed: {e}")))?;
        self.with_source_waveforms(scaled)
    }

    /// A copy of this system with the ground capacitance at `row`
    /// scaled by `factor` — the "tune/add a decap at this node" what-if
    /// edit. Only the `C[row, row]` diagonal changes, so the sparsity
    /// pattern (and [`MnaSystem::pattern_fingerprint`]) is preserved
    /// while [`MnaSystem::value_fingerprint`] changes.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when `factor` is not a
    /// positive finite number, `row` is not a node row, or the node has
    /// no stored capacitance to scale.
    pub fn with_cap_scaled(&self, row: usize, factor: f64) -> Result<Self, CircuitError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(CircuitError::InvalidNetlist(format!(
                "cap scale factor must be positive and finite, got {factor}"
            )));
        }
        if row >= self.num_nodes {
            return Err(CircuitError::InvalidNetlist(format!(
                "cap edit row {row} is not a node row (nodes: {})",
                self.num_nodes
            )));
        }
        let mut out = self.clone();
        match csr_entry_mut(&mut out.c, row, row) {
            Some(v) if *v != 0.0 => *v *= factor,
            _ => {
                return Err(CircuitError::InvalidNetlist(format!(
                    "node row {row} has no capacitance to scale"
                )))
            }
        }
        Ok(out)
    }

    /// A copy of this system with `dg` added to the conductance between
    /// node rows `a` and `b` (ground when `None`) — the "change one R"
    /// what-if edit. All four stamp entries must already exist in `G`'s
    /// pattern, so the fingerprinted structure is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when `dg` is not
    /// finite, a row is out of range, or a stamp entry is absent from
    /// the pattern.
    pub fn with_conductance_delta(
        &self,
        a: Option<usize>,
        b: Option<usize>,
        dg: f64,
    ) -> Result<Self, CircuitError> {
        if !dg.is_finite() {
            return Err(CircuitError::InvalidNetlist(format!(
                "conductance delta must be finite, got {dg}"
            )));
        }
        for r in [a, b].into_iter().flatten() {
            if r >= self.num_nodes {
                return Err(CircuitError::InvalidNetlist(format!(
                    "conductance edit row {r} is not a node row (nodes: {})",
                    self.num_nodes
                )));
            }
        }
        let mut out = self.clone();
        let mut bump = |r: usize, c: usize, v: f64| match csr_entry_mut(&mut out.g, r, c) {
            Some(e) => {
                *e += v;
                Ok(())
            }
            None => Err(CircuitError::InvalidNetlist(format!(
                "G has no stored entry at ({r}, {c}) to edit"
            ))),
        };
        if let Some(i) = a {
            bump(i, i, dg)?;
        }
        if let Some(j) = b {
            bump(j, j, dg)?;
        }
        if let (Some(i), Some(j)) = (a, b) {
            bump(i, j, -dg)?;
            bump(j, i, -dg)?;
        }
        Ok(out)
    }

    /// The sparse value edit set turning `base` into `self`, for the
    /// Sherman–Morrison–Woodbury what-if fast path.
    ///
    /// Guarded by the existing fingerprints: returns `None` when the
    /// sparsity patterns differ ([`MnaSystem::pattern_fingerprint`]
    /// mismatch — a structural change cannot be a value edit), and
    /// short-circuits to an empty diff when the value fingerprints
    /// match. Otherwise walks the shared `G`/`C` patterns once and
    /// records per-row deltas (`self − base`), so the edit's rank is
    /// the number of **touched rows** (stamp structure), not the number
    /// of changed entries. `B` differences are deliberately ignored:
    /// `B` is never factored, so they need no correction.
    pub fn value_diff(&self, base: &MnaSystem) -> Option<ValueDiff> {
        if self.dim() != base.dim() || self.pattern_fingerprint() != base.pattern_fingerprint() {
            return None;
        }
        let dim = self.dim();
        if self.value_fingerprint() == base.value_fingerprint() {
            return Some(ValueDiff {
                dim,
                g_rows: Vec::new(),
                c_rows: Vec::new(),
            });
        }
        let g_rows = diff_rows(&self.g, &base.g)?;
        let c_rows = diff_rows(&self.c, &base.c)?;
        Some(ValueDiff {
            dim,
            g_rows,
            c_rows,
        })
    }
}

/// Mutable access to a stored CSR entry, if present in the pattern.
fn csr_entry_mut(m: &mut CsrMatrix, r: usize, c: usize) -> Option<&mut f64> {
    let pos = m.row_indices(r).iter().position(|&cc| cc == c)?;
    Some(&mut m.row_values_mut(r)[pos])
}

/// Per-row value deltas `new − base` over a shared pattern, ascending
/// row order, each row's entries in stored (ascending column) order.
/// `None` when the patterns turn out to differ after all (fingerprint
/// collision safety net).
fn diff_rows(new: &CsrMatrix, base: &CsrMatrix) -> Option<Vec<(usize, SparseCol)>> {
    let mut rows = Vec::new();
    for r in 0..new.nrows() {
        let (ni, nv) = (new.row_indices(r), new.row_values(r));
        let (bi, bv) = (base.row_indices(r), base.row_values(r));
        if ni != bi {
            return None;
        }
        let mut entries: Vec<(usize, f64)> = Vec::new();
        for ((&c, &a), &b) in ni.iter().zip(nv).zip(bv) {
            if a.to_bits() != b.to_bits() {
                let d = a - b;
                if d != 0.0 {
                    entries.push((c, d));
                }
            }
        }
        if !entries.is_empty() {
            rows.push((r, entries));
        }
    }
    Some(rows)
}

/// A sparse value edit set between two same-pattern [`MnaSystem`]s
/// (produced by [`MnaSystem::value_diff`]): per-row deltas of `G` and
/// `C`, exposed as the `U`/`V` column pairs of a rank-`k` update
/// `A' = A + U·Vᵀ` with `k` = touched-row count.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueDiff {
    dim: usize,
    /// Touched rows of `ΔG` with their delta entries, ascending.
    g_rows: Vec<(usize, SparseCol)>,
    /// Touched rows of `ΔC` with their delta entries, ascending.
    c_rows: Vec<(usize, SparseCol)>,
}

/// The `U`/`V` column pairs of a rank-`k` edit `A' = A + U·Vᵀ`, in the
/// form [`matex_sparse::SmwUpdate::build`] consumes.
pub type UpdateCols = (Vec<SparseCol>, Vec<SparseCol>);

impl ValueDiff {
    /// Dimension of the differed systems.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when the systems' matrices are numerically identical.
    pub fn is_empty(&self) -> bool {
        self.g_rows.is_empty() && self.c_rows.is_empty()
    }

    /// Number of rows touched in `G`.
    pub fn rank_g(&self) -> usize {
        self.g_rows.len()
    }

    /// Number of rows touched in `C`.
    pub fn rank_c(&self) -> usize {
        self.c_rows.len()
    }

    /// Rank of the widest correction any solver path needs: the number
    /// of rows touched in `G` *or* `C` (their union — the shifted
    /// system `C + γG` inherits every touched row).
    pub fn rank(&self) -> usize {
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < self.g_rows.len() || j < self.c_rows.len() {
            let gr = self.g_rows.get(i).map(|e| e.0).unwrap_or(usize::MAX);
            let cr = self.c_rows.get(j).map(|e| e.0).unwrap_or(usize::MAX);
            if gr <= cr {
                i += 1;
            }
            if cr <= gr {
                j += 1;
            }
            count += 1;
        }
        count
    }

    /// The edit columns for `G_new = G_base + U·Vᵀ`: `U` holds one unit
    /// column per touched row, `V` the matching delta rows.
    pub fn g_update(&self) -> UpdateCols {
        rows_to_update(&self.g_rows)
    }

    /// The edit columns for `C_new = C_base + U·Vᵀ`.
    pub fn c_update(&self) -> UpdateCols {
        rows_to_update(&self.c_rows)
    }

    /// The edit columns for the shifted system
    /// `(C + γG)_new = (C + γG)_base + U·Vᵀ`: touched rows are the
    /// union of both matrices' touched rows, each delta row
    /// `ΔC[r, :] + γ·ΔG[r, :]`.
    pub fn shifted_update(&self, gamma: f64) -> UpdateCols {
        rows_to_update(&merge_touched(&self.c_rows, &self.g_rows, 1.0, gamma))
    }
}

/// Turns per-row deltas into SMW `U`/`V` columns: `U[:, k] = e_{row_k}`,
/// `V[:, k] = delta_row_kᵀ`.
fn rows_to_update(rows: &[(usize, SparseCol)]) -> UpdateCols {
    let u = rows.iter().map(|&(r, _)| vec![(r, 1.0)]).collect();
    let v = rows.iter().map(|(_, entries)| entries.clone()).collect();
    (u, v)
}

/// Merges two per-row delta sets into `alpha·first + beta·second`,
/// ascending rows, each row's entries merged in ascending column order.
fn merge_touched(
    first: &[(usize, SparseCol)],
    second: &[(usize, SparseCol)],
    alpha: f64,
    beta: f64,
) -> Vec<(usize, Vec<(usize, f64)>)> {
    let mut out: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < first.len() || j < second.len() {
        let take_first = j >= second.len() || (i < first.len() && first[i].0 <= second[j].0);
        let take_second = i >= first.len() || (j < second.len() && second[j].0 <= first[i].0);
        let row = if take_first { first[i].0 } else { second[j].0 };
        let mut entries: Vec<(usize, f64)> = Vec::new();
        let empty: Vec<(usize, f64)> = Vec::new();
        let fe = if take_first { &first[i].1 } else { &empty };
        let se = if take_second { &second[j].1 } else { &empty };
        let (mut p, mut q) = (0, 0);
        while p < fe.len() || q < se.len() {
            let fc = fe.get(p).map(|e| e.0).unwrap_or(usize::MAX);
            let sc = se.get(q).map(|e| e.0).unwrap_or(usize::MAX);
            let (col, val) = if fc < sc {
                p += 1;
                (fc, alpha * fe[p - 1].1)
            } else if sc < fc {
                q += 1;
                (sc, beta * se[q - 1].1)
            } else {
                p += 1;
                q += 1;
                (fc, alpha * fe[p - 1].1 + beta * se[q - 1].1)
            };
            if val != 0.0 {
                entries.push((col, val));
            }
        }
        if take_first {
            i += 1;
        }
        if take_second {
            j += 1;
        }
        if !entries.is_empty() {
            out.push((row, entries));
        }
    }
    out
}

/// Feeds a CSR matrix's shape and nonzero pattern into a hasher.
fn hash_pattern(m: &CsrMatrix, h: &mut Fnv64) {
    h.write_usize(m.nrows());
    h.write_usize(m.ncols());
    h.write_usizes(m.indptr());
    for r in 0..m.nrows() {
        h.write_usizes(m.row_indices(r));
    }
}

/// Symmetric two-terminal stamp into a COO matrix.
fn stamp_conductance(m: &mut CooMatrix, a: Option<usize>, b: Option<usize>, val: f64) {
    if let Some(i) = a {
        m.push(i, i, val);
    }
    if let Some(j) = b {
        m.push(j, j, val);
    }
    if let (Some(i), Some(j)) = (a, b) {
        m.push(i, j, -val);
        m.push(j, i, -val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;
    use matex_sparse::{LuOptions, SparseLu};

    #[test]
    fn voltage_divider_dc() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.add_vsource("vs", vdd, Netlist::ground(), Waveform::Dc(1.8))
            .unwrap();
        nl.add_resistor("r1", vdd, out, 100.0).unwrap();
        nl.add_resistor("r2", out, Netlist::ground(), 100.0)
            .unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.dim(), 3);
        // Solve G x = B u(0).
        let lu = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let x = lu.solve(&sys.bu_at(0.0));
        let out_row = sys.node_row("out").unwrap();
        let vdd_row = sys.node_row("vdd").unwrap();
        assert!((x[vdd_row] - 1.8).abs() < 1e-12);
        assert!((x[out_row] - 0.9).abs() < 1e-12);
        // Source current = -9 mA (flows out of + terminal).
        assert!((x[2] + 0.009).abs() < 1e-12);
    }

    #[test]
    fn current_source_direction() {
        // 1 mA pushed from ground into node a with 1 kΩ to ground: +1 V.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r1", a, Netlist::ground(), 1000.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let lu = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let x = lu.solve(&sys.bu_at(0.0));
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inductor_is_dc_short() {
        // V source -> R -> L -> ground: at DC the inductor row forces
        // v_mid = 0 ... actually v_a - v_b = 0 across the inductor.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.add_vsource("v", a, Netlist::ground(), Waveform::Dc(1.0))
            .unwrap();
        nl.add_resistor("r", a, m, 50.0).unwrap();
        nl.add_inductor("l", m, Netlist::ground(), 1e-9).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.dim(), 4); // 2 nodes + 1 inductor + 1 vsource
        let lu = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let x = lu.solve(&sys.bu_at(0.0));
        let m_row = sys.node_row("m").unwrap();
        assert!(x[m_row].abs() < 1e-12, "inductor should short m to ground");
        // Current through the inductor = 1/50 A.
        let il_row = sys.num_nodes(); // first branch row
        assert!((x[il_row] - 0.02).abs() < 1e-12);
    }

    #[test]
    fn masked_input_zeroes_others() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1.0))
            .unwrap();
        nl.add_isource("i2", Netlist::ground(), a, Waveform::Dc(2.0))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.input_at(0.0), vec![1.0, 2.0]);
        assert_eq!(sys.input_masked_at(0.0, &[1]), vec![0.0, 2.0]);
    }

    #[test]
    fn zero_c_rows_reported() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        nl.add_resistor("r", a, b, 1.0).unwrap();
        nl.add_resistor("r2", b, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        // Node b has no capacitor: its C row is empty.
        assert_eq!(sys.zero_c_rows(), vec![1]);
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist::new();
        assert!(MnaSystem::assemble(&nl).is_err());
    }

    #[test]
    fn fingerprints_separate_structure_values_and_sources() {
        let build = |ohms: f64, amps: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(amps))
                .unwrap();
            nl.add_resistor("r1", a, Netlist::ground(), ohms).unwrap();
            nl.add_capacitor("c1", a, Netlist::ground(), 1e-12).unwrap();
            MnaSystem::assemble(&nl).unwrap()
        };
        let base = build(1000.0, 1e-3);
        let same = build(1000.0, 1e-3);
        assert_eq!(base.pattern_fingerprint(), same.pattern_fingerprint());
        assert_eq!(base.value_fingerprint(), same.value_fingerprint());
        assert_eq!(base.source_fingerprint(), same.source_fingerprint());
        // Different element value: same pattern, different values.
        let revalued = build(500.0, 1e-3);
        assert_eq!(base.pattern_fingerprint(), revalued.pattern_fingerprint());
        assert_ne!(base.value_fingerprint(), revalued.value_fingerprint());
        // Different waveform: matrices identical, sources differ.
        let redriven = build(1000.0, 2e-3);
        assert_eq!(base.value_fingerprint(), redriven.value_fingerprint());
        assert_ne!(base.source_fingerprint(), redriven.source_fingerprint());
    }

    #[test]
    fn scenario_rebind_preserves_matrix_fingerprints() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r1", a, Netlist::ground(), 1000.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let scaled = sys.with_scaled_sources(2.0).unwrap();
        assert_eq!(sys.value_fingerprint(), scaled.value_fingerprint());
        assert_ne!(sys.source_fingerprint(), scaled.source_fingerprint());
        assert_eq!(scaled.input_at(0.0), vec![2e-3]);
        // Rebind validates the column count.
        assert!(sys.with_source_waveforms(vec![]).is_err());
        let swapped = sys.with_source_waveforms(vec![Waveform::Dc(5.0)]).unwrap();
        assert_eq!(swapped.input_at(0.0), vec![5.0]);
        assert!(sys.with_scaled_sources(f64::INFINITY).is_err());
    }

    #[test]
    fn row_names_cover_branches() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_vsource("vs", a, Netlist::ground(), Waveform::Dc(1.0))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.row_name(0), "a");
        assert_eq!(sys.row_name(1), "i(vs)");
    }

    /// Applies `U·Vᵀ` (from a [`ValueDiff`] update) to a dense vector:
    /// `out += U (Vᵀ x)`.
    fn apply_update(u: &[Vec<(usize, f64)>], v: &[Vec<(usize, f64)>], x: &[f64], out: &mut [f64]) {
        for (ucol, vcol) in u.iter().zip(v) {
            let dot: f64 = vcol.iter().map(|&(r, val)| val * x[r]).sum();
            for &(r, val) in ucol {
                out[r] += val * dot;
            }
        }
    }

    fn pdn_pair() -> (MnaSystem, MnaSystem) {
        let base = crate::PdnBuilder::new(6, 6)
            .num_loads(4)
            .seed(77)
            .build()
            .unwrap();
        let variant = base.with_cap_scaled(7, 3.0).unwrap();
        (base, variant)
    }

    #[test]
    fn value_diff_no_change_short_circuits() {
        let (base, _) = pdn_pair();
        let diff = base.value_diff(&base).expect("same system diffs");
        assert!(diff.is_empty());
        assert_eq!(diff.rank(), 0);
        // Source overrides keep the matrices identical too.
        let scaled = base.with_scaled_sources(1.5).unwrap();
        assert!(scaled.value_diff(&base).unwrap().is_empty());
    }

    #[test]
    fn value_diff_decap_add_is_rank_one() {
        let (base, variant) = pdn_pair();
        assert_eq!(base.pattern_fingerprint(), variant.pattern_fingerprint());
        assert_ne!(base.value_fingerprint(), variant.value_fingerprint());
        let diff = variant.value_diff(&base).expect("same pattern diffs");
        assert!(!diff.is_empty());
        assert_eq!(diff.rank_g(), 0, "cap edit must not touch G");
        assert_eq!(diff.rank_c(), 1);
        assert_eq!(diff.rank(), 1);
        // C_variant = C_base + U·Vᵀ exactly.
        let n = base.dim();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let (u, v) = diff.c_update();
        let mut got = base.c().matvec(&x);
        apply_update(&u, &v, &x, &mut got);
        let want = variant.c().matvec(&x);
        for (p, q) in got.iter().zip(&want) {
            assert!((p - q).abs() <= 1e-18, "{p} vs {q}");
        }
    }

    #[test]
    fn value_diff_single_r_change_has_stamp_rank() {
        let base = crate::PdnBuilder::new(6, 6)
            .num_loads(4)
            .seed(78)
            .build()
            .unwrap();
        // Change one wire resistor: both endpoint rows touched → rank 2,
        // not 4 (the number of changed entries).
        let a = base
            .node_row(&crate::PdnBuilder::node_name(1, 1, 1))
            .unwrap();
        let b = base
            .node_row(&crate::PdnBuilder::node_name(1, 2, 1))
            .unwrap();
        let variant = base.with_conductance_delta(Some(a), Some(b), 0.7).unwrap();
        let diff = variant.value_diff(&base).expect("same pattern diffs");
        assert_eq!(diff.rank_g(), 2);
        assert_eq!(diff.rank_c(), 0);
        assert_eq!(diff.rank(), 2);
        let n = base.dim();
        let x: Vec<f64> = (0..n).map(|i| 0.5 - (i % 3) as f64).collect();
        let (u, v) = diff.g_update();
        let mut got = base.g().matvec(&x);
        apply_update(&u, &v, &x, &mut got);
        let want = variant.g().matvec(&x);
        for (p, q) in got.iter().zip(&want) {
            assert!((p - q).abs() <= 1e-12, "{p} vs {q}");
        }
        // The shifted-system update combines ΔC + γΔG over the union.
        let gamma = 1e-10;
        let (us, vs) = diff.shifted_update(gamma);
        assert_eq!(us.len(), 2);
        let shift_base =
            matex_sparse::CsrMatrix::linear_combination(1.0, base.c(), gamma, base.g()).unwrap();
        let shift_new =
            matex_sparse::CsrMatrix::linear_combination(1.0, variant.c(), gamma, variant.g())
                .unwrap();
        let mut got = shift_base.matvec(&x);
        apply_update(&us, &vs, &x, &mut got);
        let want = shift_new.matvec(&x);
        for (p, q) in got.iter().zip(&want) {
            assert!((p - q).abs() <= 1e-18, "{p} vs {q}");
        }
    }

    #[test]
    fn value_diff_rejects_structural_changes() {
        let (base, _) = pdn_pair();
        let other = crate::PdnBuilder::new(7, 6)
            .num_loads(4)
            .seed(77)
            .build()
            .unwrap();
        assert!(base.value_diff(&other).is_none());
    }

    #[test]
    fn edit_helpers_validate_input() {
        let (base, _) = pdn_pair();
        assert!(base.with_cap_scaled(7, 0.0).is_err());
        assert!(base.with_cap_scaled(base.dim() + 1, 2.0).is_err());
        assert!(base
            .with_conductance_delta(Some(0), Some(1), f64::NAN)
            .is_err());
        // Nodes 0 and 5 are not pattern-adjacent on a 6-wide grid row.
        assert!(base.with_conductance_delta(Some(0), Some(5), 0.1).is_err());
    }
}
