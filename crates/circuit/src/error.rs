use std::fmt;

/// Errors from circuit construction, parsing and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// An element had an invalid value (non-positive resistance, NaN, ...).
    InvalidElement(String),
    /// The netlist references an unknown node or is otherwise inconsistent.
    InvalidNetlist(String),
    /// A netlist file could not be parsed; carries line number and reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The MNA system was singular (e.g. a floating subcircuit with no DC
    /// path to ground).
    SingularSystem(String),
    /// An underlying sparse-solver error.
    Solver(matex_sparse::SparseError),
    /// An underlying waveform error.
    Waveform(matex_waveform::WaveformError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidElement(msg) => write!(f, "invalid element: {msg}"),
            CircuitError::InvalidNetlist(msg) => write!(f, "invalid netlist: {msg}"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::SingularSystem(msg) => write!(f, "singular system: {msg}"),
            CircuitError::Solver(e) => write!(f, "sparse solver error: {e}"),
            CircuitError::Waveform(e) => write!(f, "waveform error: {e}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Solver(e) => Some(e),
            CircuitError::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<matex_sparse::SparseError> for CircuitError {
    fn from(e: matex_sparse::SparseError) -> Self {
        CircuitError::Solver(e)
    }
}

impl From<matex_waveform::WaveformError> for CircuitError {
    fn from(e: matex_waveform::WaveformError) -> Self {
        CircuitError::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CircuitError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(CircuitError::InvalidElement("r<=0".into())
            .to_string()
            .contains("r<=0"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = CircuitError::from(matex_sparse::SparseError::Singular { column: 1 });
        assert!(e.source().is_some());
    }
}
