//! DC operating-point analysis.

use crate::{CircuitError, MnaSystem};
use matex_sparse::{LuOptions, SparseError, SparseLu};

/// Computes the DC operating point `x(0)`: the solution of
/// `G x = B u(0)` (capacitors open, inductors short).
///
/// The result is the initial condition for every transient engine, and the
/// `DC(s)` column of the paper's Table 2.
///
/// # Errors
///
/// * [`CircuitError::SingularSystem`] when `G` is singular (a node with no
///   DC path to ground, or a loop of voltage sources).
/// * Propagates other solver failures as [`CircuitError::Solver`].
///
/// # Example
///
/// ```
/// use matex_circuit::{dc_operating_point, MnaSystem, Netlist};
/// use matex_waveform::Waveform;
///
/// # fn main() -> Result<(), matex_circuit::CircuitError> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// nl.add_isource("i", Netlist::ground(), a, Waveform::Dc(2.0))?;
/// nl.add_resistor("r", a, Netlist::ground(), 3.0)?;
/// let sys = MnaSystem::assemble(&nl)?;
/// let x0 = dc_operating_point(&sys)?;
/// assert!((x0[0] - 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn dc_operating_point(sys: &MnaSystem) -> Result<Vec<f64>, CircuitError> {
    let lu = factor_g(sys)?;
    Ok(lu.solve(&sys.bu_at(0.0)))
}

/// Factors `G` once for repeated DC-like solves (also used by the MATEX
/// input-term computation, which needs `G⁻¹` applications).
///
/// # Errors
///
/// As [`dc_operating_point`].
pub fn factor_g(sys: &MnaSystem) -> Result<SparseLu, CircuitError> {
    SparseLu::factor(sys.g(), &LuOptions::default()).map_err(|e| match e {
        SparseError::Singular { column } => CircuitError::SingularSystem(format!(
            "G is singular at pivot column {column}; check for nodes with no DC path to ground"
        )),
        other => CircuitError::Solver(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;
    use matex_waveform::Waveform;

    #[test]
    fn series_resistors_with_vsource() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_vsource("v", a, Netlist::ground(), Waveform::Dc(10.0))
            .unwrap();
        nl.add_resistor("r1", a, b, 6.0).unwrap();
        nl.add_resistor("r2", b, Netlist::ground(), 4.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let x = dc_operating_point(&sys).unwrap();
        assert!((x[sys.node_row("b").unwrap()] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_resistor("r1", a, Netlist::ground(), 1.0).unwrap();
        // b connects only via a capacitor: no DC path.
        nl.add_capacitor("c", b, Netlist::ground(), 1e-12).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Dc(1.0))
            .unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        match dc_operating_point(&sys) {
            Err(CircuitError::SingularSystem(_)) => {}
            other => panic!("expected singular system, got {other:?}"),
        }
    }

    #[test]
    fn pulse_source_uses_initial_value() {
        use matex_waveform::Pulse;
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.5, 2.0, 1.0, 0.1, 1.0, 0.1).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 2.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let x = dc_operating_point(&sys).unwrap();
        // At t=0 the pulse still sits at v1 = 0.5 A -> 1.0 V.
        assert!((x[0] - 1.0).abs() < 1e-12);
    }
}
