//! Regularization of singular `C` matrices for the MEXP variant.
//!
//! The standard-Krylov MEXP method must factor `C` (paper Alg. 1 with
//! `X1 = C`), which fails when `C` is singular — cap-less nodes and
//! voltage-source/inductor branch rows have empty `C` rows. The paper cites
//! a structural regularization [Chen, Weng, Cheng TCAD'12]; we implement the
//! practical ε-variant: every zero diagonal of `C` receives a small
//! parasitic value, chosen relative to the largest capacitance present.
//!
//! I-MATEX and R-MATEX never need this (they factor `G` or `C + γG`): the
//! regularization-free property demonstrated in Sec. 3.3.3.

use crate::MnaSystem;
use matex_sparse::CsrMatrix;

/// Result of regularizing an MNA system for MEXP.
#[derive(Debug, Clone)]
pub struct Regularized {
    /// The replacement `C` matrix with ε on previously zero diagonals.
    pub c: CsrMatrix,
    /// Rows that received the parasitic ε.
    pub patched_rows: Vec<usize>,
    /// The ε value used.
    pub epsilon: f64,
}

/// Returns a nonsingular replacement for `C`, patching zero diagonal rows
/// with `eps_rel · max|C|` (parasitic capacitance / inertia).
///
/// When `C` has no zero rows the original matrix is returned unchanged
/// (empty `patched_rows`).
///
/// # Panics
///
/// Panics if `eps_rel` is not a positive finite number.
pub fn regularize_c(sys: &MnaSystem, eps_rel: f64) -> Regularized {
    assert!(
        eps_rel.is_finite() && eps_rel > 0.0,
        "eps_rel must be positive"
    );
    let c = sys.c();
    let cmax = c
        .indptr()
        .windows(2)
        .enumerate()
        .flat_map(|(r, _)| c.row_values(r).iter().copied())
        .fold(0.0_f64, |m, v| m.max(v.abs()));
    let eps = if cmax > 0.0 { eps_rel * cmax } else { eps_rel };
    let dim = sys.dim();
    let num_nodes = sys.num_nodes();
    let mut patched = Vec::new();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(c.nnz() + dim);
    for r in 0..dim {
        for (k, &col) in c.row_indices(r).iter().enumerate() {
            triplets.push((r, col, c.row_values(r)[k]));
        }
        let diag_zero = c.get(r, r) == 0.0;
        let row_zero = c.row_values(r).iter().all(|&v| v == 0.0);
        if diag_zero && row_zero {
            // Sign matters for stability of the regularized pencil:
            // node rows behave like parasitic caps (+ε), but voltage-
            // source branch rows (`v+ − v− = E` with the `+A_V`/`+A_Vᵀ`
            // bordered coupling) need −ε — a +ε there creates a
            // positive-feedback runaway mode (+1/ε eigenvalue).
            let signed = if r < num_nodes { eps } else { -eps };
            triplets.push((r, r, signed));
            patched.push(r);
        }
    }
    Regularized {
        c: CsrMatrix::from_triplets(dim, dim, &triplets),
        patched_rows: patched,
        epsilon: eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MnaSystem, Netlist};
    use matex_sparse::{LuOptions, SparseLu};
    use matex_waveform::Waveform;

    fn rc_with_capless_node() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        nl.add_resistor("r1", a, b, 10.0).unwrap();
        nl.add_resistor("r2", b, Netlist::ground(), 10.0).unwrap();
        nl.add_vsource("v", a, Netlist::ground(), Waveform::Dc(1.0))
            .unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn patches_exactly_the_zero_rows() {
        let sys = rc_with_capless_node();
        let reg = regularize_c(&sys, 1e-9);
        // Node b and the vsource branch have empty C rows.
        assert_eq!(reg.patched_rows, sys.zero_c_rows());
        assert_eq!(reg.patched_rows.len(), 2);
        // ε relative to the 1e-12 cap.
        assert!((reg.epsilon - 1e-21).abs() < 1e-30);
    }

    #[test]
    fn regularized_c_is_factorable() {
        let sys = rc_with_capless_node();
        assert!(SparseLu::factor(sys.c(), &LuOptions::default()).is_err());
        let reg = regularize_c(&sys, 1e-9);
        assert!(SparseLu::factor(&reg.c, &LuOptions::default()).is_ok());
    }

    #[test]
    fn nonsingular_c_untouched() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let reg = regularize_c(&sys, 1e-9);
        assert!(reg.patched_rows.is_empty());
        assert_eq!(&reg.c, sys.c());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_eps() {
        let sys = rc_with_capless_node();
        let _ = regularize_c(&sys, -1.0);
    }
}
