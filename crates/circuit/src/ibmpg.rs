//! IBM power-grid benchmark interoperability.
//!
//! The paper evaluates on the IBM PG transient benchmarks (`ibmpg1t` …
//! `ibmpg6t`, Nassif ASPDAC'08), which are distributed as SPICE-dialect
//! netlists with geometric node names (`n<layer>_<x>_<y>`) plus reference
//! solution files. The benchmark files themselves are not redistributable,
//! so this repo ships:
//!
//! * [`load_ibmpg_netlist`] — parses a real benchmark file if the user has
//!   one (the dialect is covered by [`crate::parse_netlist`]),
//! * [`PgNodeName`] — the geometric node-name convention,
//! * [`Solution`] — a simple TSV waveform container with read/write and
//!   error metrics, standing in for the vendor `.solution` files (Table 3
//!   reports Max./Avg. error against exactly such reference data).

use crate::{CircuitError, ParsedCircuit};
use std::path::Path;

/// A parsed IBM-style geometric node name `n<layer>_<x>_<y>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PgNodeName {
    /// Metal layer index.
    pub layer: u32,
    /// X coordinate.
    pub x: u64,
    /// Y coordinate.
    pub y: u64,
}

impl PgNodeName {
    /// Parses `n<layer>_<x>_<y>` (case-insensitive).
    ///
    /// Returns `None` for names that do not follow the convention.
    ///
    /// # Example
    ///
    /// ```
    /// use matex_circuit::ibmpg::PgNodeName;
    ///
    /// let n = PgNodeName::parse("n1_12270_11754").unwrap();
    /// assert_eq!((n.layer, n.x, n.y), (1, 12270, 11754));
    /// assert!(PgNodeName::parse("vdd").is_none());
    /// ```
    pub fn parse(name: &str) -> Option<PgNodeName> {
        let lower = name.to_ascii_lowercase();
        let rest = lower.strip_prefix('n')?;
        let mut parts = rest.split('_');
        let layer = parts.next()?.parse().ok()?;
        let x = parts.next()?.parse().ok()?;
        let y = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(PgNodeName { layer, x, y })
    }
}

/// Loads an IBM power-grid benchmark netlist from a file.
///
/// # Errors
///
/// * [`CircuitError::Parse`] for syntax errors (with line numbers),
/// * [`CircuitError::InvalidNetlist`] if the file cannot be read.
pub fn load_ibmpg_netlist(path: &Path) -> Result<ParsedCircuit, CircuitError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        CircuitError::InvalidNetlist(format!("cannot read {}: {e}", path.display()))
    })?;
    crate::parse_netlist(&text)
}

/// A set of named waveforms sampled on a common time axis.
///
/// Serialized as TSV: header `time\t<name>...`, one row per sample. This
/// stands in for the IBM `.solution` reference files when computing the
/// Max./Avg. error columns of Table 3.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solution {
    /// Sample times, seconds (strictly increasing).
    pub times: Vec<f64>,
    /// Waveform names (node names).
    pub names: Vec<String>,
    /// `data[k][i]` = value of waveform `k` at `times[i]`.
    pub data: Vec<Vec<f64>>,
}

impl Solution {
    /// Creates a solution container.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when shapes disagree.
    pub fn new(
        times: Vec<f64>,
        names: Vec<String>,
        data: Vec<Vec<f64>>,
    ) -> Result<Self, CircuitError> {
        if names.len() != data.len() {
            return Err(CircuitError::InvalidNetlist(
                "solution: names/data length mismatch".into(),
            ));
        }
        for (k, series) in data.iter().enumerate() {
            if series.len() != times.len() {
                return Err(CircuitError::InvalidNetlist(format!(
                    "solution: series {k} has {} samples, expected {}",
                    series.len(),
                    times.len()
                )));
            }
        }
        Ok(Solution { times, names, data })
    }

    /// Serializes to TSV.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("time");
        for n in &self.names {
            out.push('\t');
            out.push_str(n);
        }
        out.push('\n');
        for (i, &t) in self.times.iter().enumerate() {
            out.push_str(&format!("{t:.15e}"));
            for series in &self.data {
                out.push_str(&format!("\t{:.15e}", series[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the TSV produced by [`Solution::to_tsv`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Parse`] with line numbers on malformed
    /// input.
    pub fn from_tsv(text: &str) -> Result<Solution, CircuitError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(CircuitError::Parse {
            line: 1,
            message: "empty solution file".into(),
        })?;
        let mut cols = header.split('\t');
        if cols.next() != Some("time") {
            return Err(CircuitError::Parse {
                line: 1,
                message: "header must start with 'time'".into(),
            });
        }
        let names: Vec<String> = cols.map(|s| s.to_string()).collect();
        let mut times = Vec::new();
        let mut data: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        for (idx, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let t: f64 = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or(CircuitError::Parse {
                    line: idx + 1,
                    message: "bad time value".into(),
                })?;
            times.push(t);
            for (k, series) in data.iter_mut().enumerate() {
                let v: f64 =
                    fields
                        .next()
                        .and_then(|f| f.parse().ok())
                        .ok_or(CircuitError::Parse {
                            line: idx + 1,
                            message: format!("missing value for column {}", k + 1),
                        })?;
                series.push(v);
            }
        }
        Solution::new(times, names, data)
    }

    /// Writes TSV to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] on I/O failure.
    pub fn write_tsv(&self, path: &Path) -> Result<(), CircuitError> {
        std::fs::write(path, self.to_tsv()).map_err(|e| {
            CircuitError::InvalidNetlist(format!("cannot write {}: {e}", path.display()))
        })
    }

    /// Maximum and average absolute difference against a reference
    /// solution on the shared time axis (series matched by name).
    ///
    /// These are the `Max. Err` / `Avg. Err` columns of Table 3.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidNetlist`] when the time axes differ
    /// or no series names are shared.
    pub fn error_vs(&self, reference: &Solution) -> Result<(f64, f64), CircuitError> {
        if self.times.len() != reference.times.len() {
            return Err(CircuitError::InvalidNetlist(format!(
                "time axes differ: {} vs {} samples",
                self.times.len(),
                reference.times.len()
            )));
        }
        let mut max_err = 0.0_f64;
        let mut sum = 0.0_f64;
        let mut count = 0usize;
        let mut matched = 0usize;
        for (k, name) in self.names.iter().enumerate() {
            let Some(rk) = reference.names.iter().position(|n| n == name) else {
                continue;
            };
            matched += 1;
            for (a, b) in self.data[k].iter().zip(&reference.data[rk]) {
                let e = (a - b).abs();
                max_err = max_err.max(e);
                sum += e;
                count += 1;
            }
        }
        if matched == 0 {
            return Err(CircuitError::InvalidNetlist(
                "no shared series names between solutions".into(),
            ));
        }
        Ok((max_err, sum / count.max(1) as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_name_parsing() {
        assert_eq!(
            PgNodeName::parse("N2_100_200"),
            Some(PgNodeName {
                layer: 2,
                x: 100,
                y: 200
            })
        );
        assert!(PgNodeName::parse("n2_100").is_none());
        assert!(PgNodeName::parse("x1_2_3").is_none());
        assert!(PgNodeName::parse("n1_2_3_4").is_none());
    }

    #[test]
    fn tsv_roundtrip() {
        let s = Solution::new(
            vec![0.0, 1e-11, 2e-11],
            vec!["n1_0_0".into(), "n1_1_0".into()],
            vec![vec![1.8, 1.79, 1.78], vec![1.8, 1.795, 1.79]],
        )
        .unwrap();
        let text = s.to_tsv();
        let back = Solution::from_tsv(&text).unwrap();
        assert_eq!(back.names, s.names);
        assert_eq!(back.times.len(), 3);
        for (a, b) in back.data[1].iter().zip(&s.data[1]) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn error_metrics() {
        let a = Solution::new(vec![0.0, 1.0], vec!["x".into()], vec![vec![1.0, 2.0]]).unwrap();
        let b = Solution::new(vec![0.0, 1.0], vec!["x".into()], vec![vec![1.1, 2.05]]).unwrap();
        let (max, avg) = a.error_vs(&b).unwrap();
        assert!((max - 0.1).abs() < 1e-12);
        assert!((avg - 0.075).abs() < 1e-12);
    }

    #[test]
    fn error_requires_shared_names() {
        let a = Solution::new(vec![0.0], vec!["x".into()], vec![vec![1.0]]).unwrap();
        let b = Solution::new(vec![0.0], vec!["y".into()], vec![vec![1.0]]).unwrap();
        assert!(a.error_vs(&b).is_err());
    }

    #[test]
    fn shape_validation() {
        assert!(Solution::new(vec![0.0], vec!["x".into()], vec![]).is_err());
        assert!(Solution::new(vec![0.0], vec!["x".into()], vec![vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn malformed_tsv_rejected() {
        assert!(Solution::from_tsv("").is_err());
        assert!(Solution::from_tsv("wrong\theader\n").is_err());
        assert!(Solution::from_tsv("time\tx\nnot_a_number\t1\n").is_err());
        assert!(Solution::from_tsv("time\tx\n0.0\n").is_err()); // missing col
    }
}
