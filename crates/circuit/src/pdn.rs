//! Synthetic power-distribution-network generators.
//!
//! The IBM power grid benchmarks used in the paper are not redistributable,
//! so this module generates structurally equivalent workloads (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`RcMeshBuilder`] — the stiff RC meshes of Table 1, with a prescribed
//!   spread of node time constants,
//! * [`PdnBuilder`] — IBM-like two-layer power grids for Tables 2–3: a fine
//!   mesh with decap and thousands of pulse loads sharing a small library
//!   of bump features, coarse straps, vias, and VDD pads.

use crate::{CircuitError, MnaSystem, Netlist};
use matex_waveform::{Pulse, Waveform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for the stiff RC meshes of the paper's Table 1.
///
/// An `nx × ny` grid of nodes with resistors between neighbours, a
/// capacitor per node, and pad resistors to ground at the corners (so `G`
/// is nonsingular). Stiffness — the paper defines it as
/// `Re(λ_min)/Re(λ_max)` of `−C⁻¹G` — is injected by making a fraction of
/// the node capacitances smaller by `stiffness_ratio`: the mesh then mixes
/// fast and slow time constants exactly like the paper's "changing the
/// entries of C, G".
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
///
/// # fn main() -> Result<(), matex_circuit::CircuitError> {
/// let sys = RcMeshBuilder::new(4, 4).stiffness_ratio(1e8).build()?;
/// assert_eq!(sys.num_nodes(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RcMeshBuilder {
    nx: usize,
    ny: usize,
    r_ohms: f64,
    c_farads: f64,
    stiffness_ratio: f64,
    fast_fraction: f64,
    pad_ohms: f64,
    loads: Vec<((usize, usize), Waveform)>,
    add_default_load: bool,
}

impl RcMeshBuilder {
    /// A mesh with `nx × ny` nodes and default PDN-scale parameters
    /// (1 Ω segments, 1 fF node caps, 10 mΩ pads).
    pub fn new(nx: usize, ny: usize) -> Self {
        RcMeshBuilder {
            nx: nx.max(1),
            ny: ny.max(1),
            r_ohms: 1.0,
            c_farads: 1e-15,
            stiffness_ratio: 1.0,
            fast_fraction: 0.25,
            pad_ohms: 0.01,
            loads: Vec::new(),
            add_default_load: true,
        }
    }

    /// Sets the mesh segment resistance (ohms).
    pub fn segment_resistance(mut self, ohms: f64) -> Self {
        self.r_ohms = ohms;
        self
    }

    /// Sets the base node capacitance (farads).
    pub fn node_capacitance(mut self, farads: f64) -> Self {
        self.c_farads = farads;
        self
    }

    /// Sets the ratio between slow and fast node time constants
    /// (≥ 1; 1 = uniform mesh). The achieved stiffness of `−C⁻¹G` scales
    /// with this ratio times the mesh's intrinsic eigenvalue spread.
    pub fn stiffness_ratio(mut self, ratio: f64) -> Self {
        self.stiffness_ratio = ratio.max(1.0);
        self
    }

    /// Fraction of nodes given the fast (small) capacitance.
    pub fn fast_fraction(mut self, f: f64) -> Self {
        self.fast_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Adds a current load (drawing from the node to ground) at grid
    /// position `(x, y)`.
    pub fn load_at(mut self, x: usize, y: usize, waveform: Waveform) -> Self {
        self.loads.push(((x, y), waveform));
        self.add_default_load = false;
        self
    }

    /// Disables the default center-node pulse load.
    pub fn no_default_load(mut self) -> Self {
        self.add_default_load = false;
        self
    }

    /// Builds the netlist.
    ///
    /// # Errors
    ///
    /// Propagates element-construction failures (cannot occur for valid
    /// builder parameters).
    pub fn build_netlist(&self) -> Result<Netlist, CircuitError> {
        let mut nl = Netlist::new();
        let name = |x: usize, y: usize| format!("n1_{x}_{y}");
        // Nodes and caps. Deterministic fast/slow assignment.
        let ratio = self.stiffness_ratio.sqrt();
        let period = if self.fast_fraction > 0.0 {
            (1.0 / self.fast_fraction).round().max(1.0) as usize
        } else {
            usize::MAX
        };
        for y in 0..self.ny {
            for x in 0..self.nx {
                let n = nl.node(&name(x, y));
                let fast = period != usize::MAX && (x + y * self.nx) % period == period - 1;
                let c = if fast {
                    self.c_farads / ratio
                } else {
                    self.c_farads * ratio
                };
                nl.add_capacitor(&format!("c_{x}_{y}"), n, Netlist::ground(), c)?;
            }
        }
        // Mesh resistors.
        for y in 0..self.ny {
            for x in 0..self.nx {
                let n = nl.node(&name(x, y));
                if x + 1 < self.nx {
                    let e = nl.node(&name(x + 1, y));
                    nl.add_resistor(&format!("rh_{x}_{y}"), n, e, self.r_ohms)?;
                }
                if y + 1 < self.ny {
                    let s = nl.node(&name(x, y + 1));
                    nl.add_resistor(&format!("rv_{x}_{y}"), n, s, self.r_ohms)?;
                }
            }
        }
        // Pad resistors to ground at the corners keep G nonsingular.
        let corners = [
            (0, 0),
            (self.nx - 1, 0),
            (0, self.ny - 1),
            (self.nx - 1, self.ny - 1),
        ];
        for (i, &(x, y)) in corners.iter().enumerate() {
            let n = nl.node(&name(x, y));
            nl.add_resistor(&format!("rpad_{i}"), n, Netlist::ground(), self.pad_ohms)?;
        }
        // Loads.
        if self.add_default_load {
            let (cx, cy) = (self.nx / 2, self.ny / 2);
            let n = nl.node(&name(cx, cy));
            let pulse = Pulse::new(0.0, 1e-3, 1e-11, 1e-11, 5e-11, 1e-11)?;
            nl.add_isource("iload_center", n, Netlist::ground(), Waveform::Pulse(pulse))?;
        }
        for (i, ((x, y), w)) in self.loads.iter().enumerate() {
            if *x >= self.nx || *y >= self.ny {
                return Err(CircuitError::InvalidNetlist(format!(
                    "load {i} at ({x},{y}) outside {}x{} mesh",
                    self.nx, self.ny
                )));
            }
            let n = nl.node(&name(*x, *y));
            nl.add_isource(&format!("iload_{i}"), n, Netlist::ground(), w.clone())?;
        }
        Ok(nl)
    }

    /// Builds the assembled MNA system.
    ///
    /// # Errors
    ///
    /// As [`RcMeshBuilder::build_netlist`].
    pub fn build(&self) -> Result<MnaSystem, CircuitError> {
        MnaSystem::assemble(&self.build_netlist()?)
    }
}

/// Builder for IBM-like two-layer power grids (Tables 2–3 workloads).
///
/// Geometry:
///
/// * layer 1 (`n1_x_y`): fine `nx × ny` mesh, segment resistance
///   `r_wire`, per-node decap `c_node`, current-source loads,
/// * layer 2 (`n2_x_y`): straps every `strap_every` grid points with a
///   quarter of the wire resistance, connected by `r_via` vias,
/// * VDD pads: voltage sources behind `r_pad` at the strap corners.
///
/// Loads are pulse sources whose timing parameters are drawn from a small
/// library of `num_features` bump shapes — the structure MATEX's grouping
/// exploits (paper Fig. 3, Table 3 "Group #").
#[derive(Debug, Clone)]
pub struct PdnBuilder {
    nx: usize,
    ny: usize,
    strap_every: usize,
    r_wire: f64,
    r_via: f64,
    r_pad: f64,
    c_node: f64,
    vdd: f64,
    num_loads: usize,
    num_features: usize,
    peak_range: (f64, f64),
    window: f64,
    seed: u64,
    cap_spread: f64,
    decap_every: usize,
    pad_inductance: Option<f64>,
}

impl PdnBuilder {
    /// A grid with `nx × ny` fine-mesh nodes and PDN-typical defaults
    /// (20 mΩ wires, 50 mΩ vias, 1.8 V, 10 fF decap, 10 ns window).
    pub fn new(nx: usize, ny: usize) -> Self {
        PdnBuilder {
            nx: nx.max(2),
            ny: ny.max(2),
            strap_every: 4,
            r_wire: 0.02,
            r_via: 0.05,
            r_pad: 0.005,
            c_node: 1e-14,
            vdd: 1.8,
            num_loads: (nx * ny / 16).max(1),
            num_features: 8,
            peak_range: (1e-4, 2e-3),
            window: 1e-8,
            seed: 42,
            cap_spread: 6.0,
            decap_every: 23,
            pad_inductance: None,
        }
    }

    /// Sets the log-uniform node-capacitance spread (≥ 1; 1 = uniform).
    /// Real grids mix thin-wire parasitics with decap cells across orders
    /// of magnitude — this is what makes them stiff.
    pub fn cap_spread(mut self, spread: f64) -> Self {
        self.cap_spread = spread.max(1.0);
        self
    }

    /// Every `k`-th fine-grid node receives a 30× decap cluster.
    pub fn decap_every(mut self, k: usize) -> Self {
        self.decap_every = k.max(1);
        self
    }

    /// Adds package inductance in series with every VDD pad (makes `C`
    /// singular via the branch rows — the regularization-free path of
    /// Sec. 3.3.3 then matters).
    pub fn pad_inductance(mut self, henries: f64) -> Self {
        self.pad_inductance = Some(henries);
        self
    }

    /// Sets the strap pitch (layer-2 node every `k` fine-grid points).
    pub fn strap_every(mut self, k: usize) -> Self {
        self.strap_every = k.max(2);
        self
    }

    /// Sets the number of current-source loads.
    pub fn num_loads(mut self, n: usize) -> Self {
        self.num_loads = n.max(1);
        self
    }

    /// Sets the number of distinct bump features (≈ MATEX groups).
    pub fn num_features(mut self, n: usize) -> Self {
        self.num_features = n.max(1);
        self
    }

    /// Sets the simulation window the load timings are spread over.
    pub fn window(mut self, seconds: f64) -> Self {
        self.window = seconds;
        self
    }

    /// Sets the supply voltage.
    pub fn vdd(mut self, volts: f64) -> Self {
        self.vdd = volts;
        self
    }

    /// Sets the per-node decap.
    pub fn node_capacitance(mut self, farads: f64) -> Self {
        self.c_node = farads;
        self
    }

    /// Sets the RNG seed for load placement and amplitudes.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The distinct bump-feature library this builder will use.
    ///
    /// Feature `j` has delay `(j+1)·window/(features+2)`, with rise/fall
    /// and width cycling over a few typical switching-event durations. All
    /// loads assigned to feature `j` share these exact parameter bits.
    pub fn feature_library(&self) -> Vec<Pulse> {
        let rises = [2e-11, 3e-11, 5e-11];
        let widths = [1e-10, 2e-10, 4e-10];
        (0..self.num_features)
            .map(|j| {
                let delay = (j as f64 + 1.0) * self.window / (self.num_features as f64 + 2.0);
                let rise = rises[j % rises.len()];
                let width = widths[(j / rises.len()) % widths.len()];
                Pulse::new(0.0, 1.0, delay, rise, width, rise)
                    .expect("library parameters are valid")
            })
            .collect()
    }

    /// Builds the netlist.
    ///
    /// # Errors
    ///
    /// Cannot fail for valid builder parameters; propagates element errors
    /// otherwise.
    pub fn build_netlist(&self) -> Result<Netlist, CircuitError> {
        let mut nl = Netlist::new();
        let n1 = |x: usize, y: usize| format!("n1_{x}_{y}");
        let n2 = |x: usize, y: usize| format!("n2_{x}_{y}");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Layer 1 mesh. Node caps spread log-uniformly; decap clusters
        // periodically — the heterogeneity that makes real grids stiff.
        for y in 0..self.ny {
            for x in 0..self.nx {
                let n = nl.node(&n1(x, y));
                let spread = if self.cap_spread > 1.0 {
                    let lo = -self.cap_spread.ln();
                    let hi = self.cap_spread.ln();
                    rng.gen_range(lo..hi).exp()
                } else {
                    1.0
                };
                let decap = if (x + y * self.nx) % self.decap_every == self.decap_every - 1 {
                    30.0
                } else {
                    1.0
                };
                nl.add_capacitor(
                    &format!("c1_{x}_{y}"),
                    n,
                    Netlist::ground(),
                    self.c_node * spread * decap,
                )?;
                if x + 1 < self.nx {
                    let e = nl.node(&n1(x + 1, y));
                    nl.add_resistor(&format!("r1h_{x}_{y}"), n, e, self.r_wire)?;
                }
                if y + 1 < self.ny {
                    let s = nl.node(&n1(x, y + 1));
                    nl.add_resistor(&format!("r1v_{x}_{y}"), n, s, self.r_wire)?;
                }
            }
        }
        // Layer 2 straps + vias.
        let sxs: Vec<usize> = (0..self.nx).step_by(self.strap_every).collect();
        let sys_: Vec<usize> = (0..self.ny).step_by(self.strap_every).collect();
        let r_strap = self.r_wire * 0.25 * self.strap_every as f64;
        for (yi, &y) in sys_.iter().enumerate() {
            for (xi, &x) in sxs.iter().enumerate() {
                let top = nl.node(&n2(x, y));
                let bottom = nl.node(&n1(x, y));
                nl.add_resistor(&format!("rvia_{x}_{y}"), top, bottom, self.r_via)?;
                nl.add_capacitor(&format!("c2_{x}_{y}"), top, Netlist::ground(), self.c_node)?;
                if xi + 1 < sxs.len() {
                    let e = nl.node(&n2(sxs[xi + 1], y));
                    nl.add_resistor(&format!("r2h_{x}_{y}"), top, e, r_strap)?;
                }
                if yi + 1 < sys_.len() {
                    let s = nl.node(&n2(x, sys_[yi + 1]));
                    nl.add_resistor(&format!("r2v_{x}_{y}"), top, s, r_strap)?;
                }
            }
        }
        // Pads at the four strap corners.
        let corners = [
            (sxs[0], sys_[0]),
            (*sxs.last().expect("nonempty"), sys_[0]),
            (sxs[0], *sys_.last().expect("nonempty")),
            (
                *sxs.last().expect("nonempty"),
                *sys_.last().expect("nonempty"),
            ),
        ];
        let mut seen: Vec<(usize, usize)> = Vec::new();
        for (i, &(x, y)) in corners.iter().enumerate() {
            if seen.contains(&(x, y)) {
                continue;
            }
            seen.push((x, y));
            let pad = nl.node(&format!("vddpad_{i}"));
            nl.add_vsource(
                &format!("vdd_{i}"),
                pad,
                Netlist::ground(),
                Waveform::Dc(self.vdd),
            )?;
            let strap = nl.node(&n2(x, y));
            match self.pad_inductance {
                Some(l) => {
                    let mid = nl.node(&format!("padl_{i}"));
                    nl.add_inductor(&format!("lpad_{i}"), pad, mid, l)?;
                    nl.add_resistor(&format!("rpad_{i}"), mid, strap, self.r_pad)?;
                }
                None => {
                    nl.add_resistor(&format!("rpad_{i}"), pad, strap, self.r_pad)?;
                }
            }
        }
        // Loads: random layer-1 nodes, feature library shapes, random
        // amplitudes (exact-bits timing shared within a feature).
        let features = self.feature_library();
        for i in 0..self.num_loads {
            let x = rng.gen_range(0..self.nx);
            let y = rng.gen_range(0..self.ny);
            let f = &features[i % features.len()];
            let peak = rng.gen_range(self.peak_range.0..self.peak_range.1);
            let pulse = Pulse { v2: peak, ..*f };
            let n = nl.node(&n1(x, y));
            nl.add_isource(
                &format!("iload_{i}"),
                n,
                Netlist::ground(),
                Waveform::Pulse(pulse),
            )?;
        }
        Ok(nl)
    }

    /// Builds the assembled MNA system.
    ///
    /// # Errors
    ///
    /// As [`PdnBuilder::build_netlist`].
    pub fn build(&self) -> Result<MnaSystem, CircuitError> {
        MnaSystem::assemble(&self.build_netlist()?)
    }

    /// Grid node by layer and position, if it exists after building.
    pub fn node_name(layer: usize, x: usize, y: usize) -> String {
        format!("n{layer}_{x}_{y}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_mesh_counts() {
        let nl = RcMeshBuilder::new(4, 3).build_netlist().unwrap();
        assert_eq!(nl.num_nodes(), 12);
        // caps: 12, R horizontal: 3*3=9, vertical: 4*2=8, pads: 4, load: 1
        assert_eq!(nl.num_elements(), 12 + 9 + 8 + 4 + 1);
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert_eq!(sys.dim(), 12);
        assert_eq!(sys.num_sources(), 1);
    }

    #[test]
    fn rc_mesh_stiffness_spreads_caps() {
        let nl = RcMeshBuilder::new(4, 4)
            .stiffness_ratio(1e8)
            .build_netlist()
            .unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let caps: Vec<f64> = (0..sys.dim()).map(|i| sys.c().get(i, i)).collect();
        let cmax = caps.iter().cloned().fold(0.0_f64, f64::max);
        let cmin = caps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(cmax / cmin > 1e7, "cap ratio {} too small", cmax / cmin);
    }

    #[test]
    fn rc_mesh_g_nonsingular() {
        let sys = RcMeshBuilder::new(5, 5).build().unwrap();
        assert!(crate::dc_operating_point(&sys).is_ok());
    }

    #[test]
    fn load_out_of_bounds_rejected() {
        let b = RcMeshBuilder::new(2, 2).load_at(5, 5, Waveform::Dc(1e-3));
        assert!(b.build().is_err());
    }

    #[test]
    fn pdn_structure() {
        let sys = PdnBuilder::new(8, 8)
            .num_loads(10)
            .num_features(3)
            .build()
            .unwrap();
        // 64 fine nodes + 9 strap nodes (every 4) + pads.
        assert!(sys.num_nodes() > 64);
        assert!(sys.num_vsources() >= 1);
        assert_eq!(sys.num_sources(), sys.num_vsources() + 10);
        // DC must be solvable and sit near VDD everywhere.
        let x = crate::dc_operating_point(&sys).unwrap();
        for (r, &v) in x[..sys.num_nodes()].iter().enumerate() {
            assert!(
                v > 1.0 && v < 1.9,
                "node {} = {v} V out of range",
                sys.row_name(r),
            );
        }
    }

    #[test]
    fn pdn_features_shared_bitwise() {
        use matex_waveform::FeatureKey;
        let sys = PdnBuilder::new(8, 8)
            .num_loads(20)
            .num_features(4)
            .build()
            .unwrap();
        let mut keys: Vec<FeatureKey> = sys
            .sources()
            .iter()
            .filter(|s| matches!(s.kind, crate::SourceKind::Current))
            .map(|s| FeatureKey::of(&s.waveform))
            .collect();
        keys.sort_by_key(|k| format!("{k:?}"));
        keys.dedup();
        assert_eq!(keys.len(), 4, "loads must share exactly 4 timing shapes");
    }

    #[test]
    fn pdn_deterministic_for_seed() {
        let a = PdnBuilder::new(6, 6).seed(7).build_netlist().unwrap();
        let b = PdnBuilder::new(6, 6).seed(7).build_netlist().unwrap();
        assert_eq!(a.num_elements(), b.num_elements());
        let c = PdnBuilder::new(6, 6).seed(8).build_netlist().unwrap();
        // Different seed: loads move (element count equal, placement not).
        let names_a: Vec<&str> = a.elements().iter().map(|e| e.name()).collect();
        let names_c: Vec<&str> = c.elements().iter().map(|e| e.name()).collect();
        assert_eq!(names_a.len(), names_c.len());
    }
}
