//! SPICE-subset netlist parser.
//!
//! Supports the element and directive subset that power-grid benchmarks
//! use (the IBM PG suite is distributed in this dialect):
//!
//! ```text
//! * comment
//! Rname n1 n2 value
//! Cname n1 n2 value
//! Lname n1 n2 value
//! Vname n+ n- value
//! Iname n+ n- PULSE(v1 v2 td tr tf pw [per])
//! Iname n+ n- PWL(t1 v1 t2 v2 ...)
//! .tran tstep tstop
//! .end
//! ```
//!
//! * values accept engineering suffixes (`f p n u m k meg g t`) and
//!   trailing unit letters (`10pF`),
//! * `+` at line start continues the previous line,
//! * text after `$` or `;` is a comment,
//! * node `0`, `gnd`, `gnd!` are ground,
//! * unknown dot-directives are collected, not rejected.

use crate::{CircuitError, Netlist};
use matex_waveform::{Pulse, Pwl, Waveform};

/// Transient-analysis request from a `.tran` directive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranSpec {
    /// Suggested (fixed) time step, seconds.
    pub step: f64,
    /// End time, seconds.
    pub stop: f64,
}

/// A parsed netlist plus any analysis directives.
#[derive(Debug, Clone)]
pub struct ParsedCircuit {
    /// The circuit.
    pub netlist: Netlist,
    /// `.tran` request, if present.
    pub tran: Option<TranSpec>,
    /// Unrecognized dot-directives (verbatim), for diagnostics.
    pub other_directives: Vec<String>,
}

/// Parses a SPICE-subset netlist from text.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with a 1-based line number for any
/// malformed element line, value, or waveform.
///
/// # Example
///
/// ```
/// use matex_circuit::parse_netlist;
///
/// # fn main() -> Result<(), matex_circuit::CircuitError> {
/// let text = "\
/// * tiny divider
/// v1 in 0 1.8
/// r1 in out 1k
/// r2 out 0 1k
/// .tran 10p 1n
/// .end";
/// let parsed = parse_netlist(text)?;
/// assert_eq!(parsed.netlist.num_elements(), 3);
/// assert_eq!(parsed.tran.unwrap().stop, 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parse_netlist(text: &str) -> Result<ParsedCircuit, CircuitError> {
    let mut netlist = Netlist::new();
    let mut tran = None;
    let mut other_directives = Vec::new();

    // Logical lines: physical lines with '+' continuations folded in,
    // remembering the first physical line number of each.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(pos) = line.find(['$', ';']) {
            line = &line[..pos];
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(rest.trim());
                }
                None => {
                    return Err(CircuitError::Parse {
                        line: line_no,
                        message: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            logical.push((line_no, trimmed.to_string()));
        }
    }

    for (line_no, line) in logical {
        let perr = |message: String| CircuitError::Parse {
            line: line_no,
            message,
        };
        let lower = line.to_ascii_lowercase();
        if lower.starts_with('.') {
            let toks: Vec<&str> = lower.split_whitespace().collect();
            match toks[0] {
                ".end" => break,
                ".tran" => {
                    if toks.len() < 3 {
                        return Err(perr(".tran requires step and stop times".into()));
                    }
                    let step = parse_value(toks[1]).map_err(&perr)?;
                    let stop = parse_value(toks[2]).map_err(&perr)?;
                    if step <= 0.0 || stop <= 0.0 {
                        return Err(perr(".tran times must be positive".into()));
                    }
                    tran = Some(TranSpec { step, stop });
                }
                ".op" | ".print" | ".plot" | ".option" | ".options" => {
                    other_directives.push(line.clone());
                }
                _ => other_directives.push(line.clone()),
            }
            continue;
        }

        // Element line. Split on whitespace but keep parenthesized
        // argument groups intact.
        let toks = tokenize_element_line(&lower);
        if toks.len() < 4 {
            return Err(perr(format!(
                "element line needs 4+ fields, got {}",
                toks.len()
            )));
        }
        let kind = lower.chars().next().expect("nonempty");
        let name = toks[0].clone();
        let n1 = netlist.node(&toks[1]);
        let n2 = netlist.node(&toks[2]);
        let rest = &toks[3..];
        match kind {
            'r' => {
                let v = parse_value(&rest[0]).map_err(&perr)?;
                netlist
                    .add_resistor(&name, n1, n2, v)
                    .map_err(|e| perr(e.to_string()))?;
            }
            'c' => {
                let v = parse_value(&rest[0]).map_err(&perr)?;
                netlist
                    .add_capacitor(&name, n1, n2, v)
                    .map_err(|e| perr(e.to_string()))?;
            }
            'l' => {
                let v = parse_value(&rest[0]).map_err(&perr)?;
                netlist
                    .add_inductor(&name, n1, n2, v)
                    .map_err(|e| perr(e.to_string()))?;
            }
            'v' => {
                let w = parse_waveform(rest).map_err(&perr)?;
                netlist
                    .add_vsource(&name, n1, n2, w)
                    .map_err(|e| perr(e.to_string()))?;
            }
            'i' => {
                let w = parse_waveform(rest).map_err(&perr)?;
                // SPICE convention: positive current flows from n+ through
                // the source to n-.
                netlist
                    .add_isource(&name, n1, n2, w)
                    .map_err(|e| perr(e.to_string()))?;
            }
            other => {
                return Err(perr(format!("unsupported element type '{other}'")));
            }
        }
    }
    Ok(ParsedCircuit {
        netlist,
        tran,
        other_directives,
    })
}

/// Splits an element line into tokens, merging `name(arg arg ...)` groups
/// into a single token and tolerating spaces around parentheses.
fn tokenize_element_line(line: &str) -> Vec<String> {
    let mut toks: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

/// Parses a source specification: a plain value, `PULSE(...)`, or
/// `PWL(...)`.
fn parse_waveform(toks: &[String]) -> Result<Waveform, String> {
    let joined = toks.join(" ");
    let spec = joined.trim();
    if let Some(args) = strip_func(spec, "pulse") {
        let vals = parse_value_list(&args)?;
        if vals.len() < 6 {
            return Err(format!(
                "pulse needs at least 6 arguments (v1 v2 td tr tf pw), got {}",
                vals.len()
            ));
        }
        // SPICE order: V1 V2 TD TR TF PW [PER]
        let (v1, v2, td, tr, tf, pw) = (vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]);
        let pulse = match vals.get(6) {
            Some(&per) => Pulse::periodic(v1, v2, td, tr, pw, tf, per),
            None => Pulse::new(v1, v2, td, tr, pw, tf),
        }
        .map_err(|e| e.to_string())?;
        return Ok(Waveform::Pulse(pulse));
    }
    if let Some(args) = strip_func(spec, "pwl") {
        let vals = parse_value_list(&args)?;
        if vals.len() < 2 || vals.len() % 2 != 0 {
            return Err("pwl needs an even number of arguments (t v pairs)".into());
        }
        let pts: Vec<(f64, f64)> = vals.chunks(2).map(|p| (p[0], p[1])).collect();
        return Ok(Waveform::Pwl(Pwl::new(pts).map_err(|e| e.to_string())?));
    }
    // Optional leading "dc" keyword.
    let spec = spec.strip_prefix("dc ").unwrap_or(spec).trim();
    let v = parse_value(spec)?;
    Ok(Waveform::Dc(v))
}

/// If `spec` is `name(args)`, returns the argument text.
fn strip_func(spec: &str, name: &str) -> Option<String> {
    let s = spec.trim();
    if !s.starts_with(name) {
        return None;
    }
    let rest = s[name.len()..].trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.to_string())
}

fn parse_value_list(s: &str) -> Result<Vec<f64>, String> {
    s.split([' ', ',', '\t'])
        .filter(|t| !t.is_empty())
        .map(parse_value)
        .collect()
}

/// Parses a SPICE number with engineering suffix and optional trailing
/// unit letters: `1.2k`, `10p`, `3meg`, `2.5e-9`, `100mV`.
///
/// # Errors
///
/// Returns a description of the malformed token.
pub fn parse_value(tok: &str) -> Result<f64, String> {
    let t = tok.trim().to_ascii_lowercase();
    if t.is_empty() {
        return Err("empty value".into());
    }
    // Longest numeric prefix (digits, sign, dot, exponent).
    let bytes = t.as_bytes();
    let mut end = 0usize;
    let mut seen_e = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        let ok = c.is_ascii_digit()
            || c == '.'
            || ((c == '+' || c == '-') && (end == 0 || bytes[end - 1] == b'e'))
            || (c == 'e' && !seen_e && end > 0 && {
                // 'e' counts as exponent only if followed by digit or sign.
                let next = bytes.get(end + 1).map(|&b| b as char);
                matches!(next, Some(c2) if c2.is_ascii_digit() || c2 == '+' || c2 == '-')
            });
        if !ok {
            break;
        }
        if c == 'e' {
            seen_e = true;
        }
        end += 1;
    }
    if end == 0 {
        return Err(format!("'{tok}' is not a number"));
    }
    let base: f64 = t[..end]
        .parse()
        .map_err(|_| format!("'{tok}' has a malformed numeric part"))?;
    let suffix = &t[end..];
    let mult = match suffix {
        "" => 1.0,
        s if s.starts_with("meg") => 1e6,
        s if s.starts_with("mil") => 25.4e-6,
        s => match s.chars().next().expect("nonempty suffix") {
            't' => 1e12,
            'g' => 1e9,
            'k' => 1e3,
            'm' => 1e-3,
            'u' => 1e-6,
            'n' => 1e-9,
            'p' => 1e-12,
            'f' => 1e-15,
            // A bare unit letter like "v" or "a": no scaling.
            'a' | 'v' | 'o' | 'h' | 's' => 1.0,
            other => return Err(format!("unknown suffix '{other}' in '{tok}'")),
        },
    };
    Ok(base * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(1e-300)
    }

    #[test]
    fn value_suffixes() {
        assert!(close(parse_value("1.5k").unwrap(), 1500.0));
        assert!(close(parse_value("10p").unwrap(), 1e-11));
        assert!(close(parse_value("3meg").unwrap(), 3e6));
        assert!(close(parse_value("2.5e-9").unwrap(), 2.5e-9));
        assert!(close(parse_value("100m").unwrap(), 0.1));
        assert!(close(parse_value("10pf").unwrap(), 1e-11));
        assert!(close(parse_value("1.8v").unwrap(), 1.8));
        assert!(close(parse_value("-3n").unwrap(), -3e-9));
        assert!(close(parse_value("1e3").unwrap(), 1000.0));
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn parses_divider() {
        let text = "v1 in 0 1.8\nr1 in out 1k\nr2 out gnd 1k\n.end\n";
        let p = parse_netlist(text).unwrap();
        assert_eq!(p.netlist.num_nodes(), 2);
        assert_eq!(p.netlist.num_elements(), 3);
    }

    #[test]
    fn parses_pulse_source_spice_order() {
        // PULSE(V1 V2 TD TR TF PW PER): TF comes before PW.
        let text = "i1 0 a PULSE(0 1m 1n 0.1n 0.2n 2n 10n)\nr1 a 0 1\n";
        let p = parse_netlist(text).unwrap();
        let (_, _, w) = p.netlist.sources().next().unwrap();
        match w {
            Waveform::Pulse(pl) => {
                assert!(close(pl.t_delay, 1e-9));
                assert!(close(pl.t_rise, 1e-10));
                assert!(close(pl.t_fall, 2e-10));
                assert!(close(pl.t_width, 2e-9));
                assert!(close(pl.t_period.unwrap(), 1e-8));
            }
            other => panic!("expected pulse, got {other:?}"),
        }
    }

    #[test]
    fn parses_pwl_and_continuation() {
        let text = "i1 0 a PWL(0 0\n+ 1n 1m 2n 0)\nr1 a 0 1\n";
        let p = parse_netlist(text).unwrap();
        let (_, _, w) = p.netlist.sources().next().unwrap();
        match w {
            Waveform::Pwl(pw) => assert_eq!(pw.points().len(), 3),
            other => panic!("expected pwl, got {other:?}"),
        }
    }

    #[test]
    fn tran_directive() {
        let text = "r1 a 0 1\n.tran 10p 1n\n";
        let p = parse_netlist(text).unwrap();
        let t = p.tran.unwrap();
        assert_eq!(t.step, 1e-11);
        assert_eq!(t.stop, 1e-9);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "* header\n\nr1 a 0 1 $ trailing comment\n* another\nr2 a 0 2 ; also\n";
        let p = parse_netlist(text).unwrap();
        assert_eq!(p.netlist.num_elements(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "r1 a 0 1\nrbad a 0\n";
        match parse_netlist(text) {
            Err(CircuitError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_element_type_rejected() {
        let text = "q1 a b c model\n";
        assert!(parse_netlist(text).is_err());
    }

    #[test]
    fn stops_at_end_directive() {
        let text = "r1 a 0 1\n.end\nr2 a 0 broken-not-parsed\n";
        let p = parse_netlist(text).unwrap();
        assert_eq!(p.netlist.num_elements(), 1);
    }

    #[test]
    fn dc_keyword_accepted() {
        let text = "v1 a 0 dc 2.5\nr1 a 0 1\n";
        let p = parse_netlist(text).unwrap();
        let (_, _, w) = p.netlist.sources().next().unwrap();
        assert_eq!(w.value(0.0), 2.5);
    }

    #[test]
    fn ibm_style_node_names() {
        let text = "r1 n1_123_456 n1_123_789 0.02\nv1 n1_123_456 0 1.8\n";
        let p = parse_netlist(text).unwrap();
        assert!(p.netlist.find_node("n1_123_456").is_some());
        assert_eq!(p.netlist.num_nodes(), 2);
    }
}
