//! Minimal, fully offline stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access. This
//! shim keeps the `criterion_group!`/`criterion_main!` bench targets
//! compiling and producing useful numbers: each benchmark runs a short
//! warm-up, then a fixed number of timed samples, and reports the median
//! per-iteration wall time. No statistics beyond that.

use std::time::{Duration, Instant};

/// How batched inputs are sized. Accepted for API compatibility; the shim
/// always materialises one input per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Per-iteration timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, excluding nothing (the closure is the unit).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        for _ in 0..SAMPLE_ITERS {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..SAMPLE_ITERS {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

const WARMUP_ITERS: usize = 2;
const SAMPLE_ITERS: usize = 7;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.as_ref(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.as_ref()), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    match b.median() {
        Some(median) => println!("bench {label:<40} median {median:>12.3?}"),
        None => println!("bench {label:<40} (no samples)"),
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion;
        let mut count = 0usize;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count >= SAMPLE_ITERS);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut b = Bencher::default();
        let mut produced = 0usize;
        b.iter_batched(
            || {
                produced += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(produced, WARMUP_ITERS + SAMPLE_ITERS);
        assert!(b.median().is_some());
    }
}
