//! Minimal, fully offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real proptest cannot be vendored. This shim implements exactly the
//! surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * `x in strategy` bindings over ranges, tuples, mapped strategies, and
//!   `prop::collection::vec`,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Generation is deterministic (seeded per test from the test name), so
//! failures reproduce exactly. There is no shrinking: a failing case
//! reports its case index and panics with the assertion message.

use std::ops::Range;

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn seeded(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. The shim equivalent of proptest's `Strategy`.
pub trait Strategy: Sized {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.end > self.start, "empty usize range");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Strategy modules mirroring proptest's `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specification: a fixed `usize` or a `Range<usize>`.
        pub trait SizeRange {
            /// Draws a length.
            fn draw(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn draw(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        /// The strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.draw(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` of values drawn from `element`, with length from `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property test (panics on failure; the
/// shim performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that draws `cases` inputs deterministically and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_cfg ($cfg); $($rest)*);
    };
    (
        @with_cfg ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seeded(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let run = |rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                        $body
                    };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run(&mut rng)
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: {} failed on case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::seeded("x");
        let mut b = TestRng::seeded("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(1.5..2.5_f64), &mut rng);
            assert!((1.5..2.5).contains(&v));
            let k = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&k));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::seeded("lens");
        for _ in 0..100 {
            let fixed = Strategy::generate(&prop::collection::vec(0.0..1.0_f64, 3usize), &mut rng);
            assert_eq!(fixed.len(), 3);
            let ranged = Strategy::generate(&prop::collection::vec(0usize..5, 0usize..4), &mut rng);
            assert!(ranged.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(
            n in 1usize..5,
            xs in prop::collection::vec(-1.0..1.0_f64, 2),
            pair in (0usize..10, 0.0..1.0_f64),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert_eq!(xs.len(), 2);
            prop_assert!(pair.0 < 10);
            prop_assert!(pair.1 >= 0.0 && pair.1 < 1.0);
        }
    }
}
