//! Minimal, fully offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access. The
//! only consumer is `matex-circuit`'s synthetic-grid builders, which need
//! a seedable deterministic generator with `gen_range` over half-open
//! `f64`/integer ranges — exactly what this shim provides (splitmix64
//! core). The streams differ from upstream `rand`; nothing in the
//! workspace depends on upstream's exact values, only on determinism per
//! seed.

use std::ops::Range;

/// Sources of randomness: the core 64-bit generator.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers over any [`RngCore`] (the `rand::Rng` surface used by
/// this workspace).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be sampled uniformly from by a generator.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.end > self.start, "gen_range: empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.end > self.start, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..1.5_f64);
            assert!((-2.5..1.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0usize..1 << 30)).collect();
        let vb: Vec<usize> = (0..8).map(|_| b.gen_range(0usize..1 << 30)).collect();
        assert_ne!(va, vb);
    }
}
