//! Backward Euler with fixed step.
//!
//! First-order A-stable baseline. Factor `(C/h + G)` once; each step is a
//! mat-vec plus one forward/backward substitution pair. Mainly used as the
//! tiny-step accuracy reference (paper Table 1 compares against BE at
//! 0.05 ps).

use crate::engine::{InputEval, Recorder, TransientEngine};
use crate::{CoreError, SolveStats, TransientResult, TransientSpec};
use matex_circuit::MnaSystem;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use std::time::Instant;

/// Fixed-step backward Euler engine.
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{BackwardEuler, TransientEngine, TransientSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(3, 3).build()?;
/// let spec = TransientSpec::new(0.0, 1e-10, 1e-11)?;
/// let be = BackwardEuler::new(1e-12);
/// let result = be.run(&sys, &spec)?;
/// assert_eq!(result.num_time_points(), 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BackwardEuler {
    h: f64,
    mask: Option<Vec<usize>>,
}

impl BackwardEuler {
    /// Creates the engine with step size `h` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `h` is not positive and finite.
    pub fn new(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "step size must be positive");
        BackwardEuler { h, mask: None }
    }

    /// Restricts the active sources (superposition subtask mode).
    pub fn with_source_mask(mut self, members: Vec<usize>) -> Self {
        self.mask = Some(members);
        self
    }

    /// The fixed step size.
    pub fn h(&self) -> f64 {
        self.h
    }
}

impl TransientEngine for BackwardEuler {
    fn run(&self, sys: &MnaSystem, spec: &TransientSpec) -> Result<TransientResult, CoreError> {
        let mut stats = SolveStats::default();
        let input = match &self.mask {
            None => InputEval::new(sys),
            Some(m) => InputEval::masked(sys, m),
        };

        // DC initial condition.
        let t0 = Instant::now();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default())?;
        let mut x = lu_g.solve(&input.bu_at(spec.t_start()));
        stats.substitution_pairs += 1;
        stats.factorizations += 1;
        stats.dc_time = t0.elapsed();

        // Factor (C/h + G).
        let tf = Instant::now();
        let lhs = CsrMatrix::linear_combination(1.0 / self.h, sys.c(), 1.0, sys.g())?;
        let lu = SparseLu::factor(&lhs, &LuOptions::default())?;
        stats.factorizations += 1;
        stats.factor_time = tf.elapsed();

        let tt = Instant::now();
        let c_over_h = sys.c().scaled(1.0 / self.h);
        let mut rec = Recorder::new(spec, sys.dim());
        rec.record_step(spec.t_start(), &x, spec.t_start(), &x);
        let mut t = spec.t_start();
        let mut out = vec![0.0; sys.dim()];
        let mut work = vec![0.0; sys.dim()];
        let mut rhs = vec![0.0; sys.dim()];
        while t < spec.t_stop() - 1e-12 * self.h {
            let h = self.h.min(spec.t_stop() - t);
            let tn = t + h;
            // rhs = (C/h) x_n + B u(t_{n+1}); on a (shorter) final step the
            // matrix would change, so clamp only within float tolerance.
            if (h - self.h).abs() > 1e-9 * self.h {
                // Final ragged step: refactor for the shortened h.
                let lhs2 = CsrMatrix::linear_combination(1.0 / h, sys.c(), 1.0, sys.g())?;
                let lu2 = SparseLu::factor(&lhs2, &LuOptions::default())?;
                stats.factorizations += 1;
                let ch = sys.c().scaled(1.0 / h);
                ch.matvec_into(&x, &mut rhs);
                for (r, b) in rhs.iter_mut().zip(input.bu_at(tn)) {
                    *r += b;
                }
                lu2.solve_into(&rhs, &mut out, &mut work);
            } else {
                c_over_h.matvec_into(&x, &mut rhs);
                for (r, b) in rhs.iter_mut().zip(input.bu_at(tn)) {
                    *r += b;
                }
                lu.solve_into(&rhs, &mut out, &mut work);
            }
            stats.substitution_pairs += 1;
            stats.steps += 1;
            rec.record_step(t, &x, tn, &out);
            x.copy_from_slice(&out);
            t = tn;
        }
        stats.transient_time = tt.elapsed();
        let (times, rows, series) = rec.finish();
        Ok(TransientResult::new(
            self.name(),
            times,
            rows,
            series,
            x,
            stats,
        ))
    }

    fn name(&self) -> String {
        format!("BE(h={:.3e})", self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::Netlist;
    use matex_waveform::Waveform;

    /// RC charge: i = 1 mA into (R = 1k || C = 1 pF); v(t) = 1 − e^{−t/τ}.
    fn rc_circuit() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn rc_step_response_first_order_accurate() {
        let sys = rc_circuit();
        // Start from zero state: mask the source at DC by starting the
        // waveform... simpler: initial DC already has v = 1.0 (steady
        // state), so test the *hold*: solution stays at 1.0.
        let spec = TransientSpec::new(0.0, 5e-9, 1e-10).unwrap();
        let be = BackwardEuler::new(1e-11);
        let r = be.run(&sys, &spec).unwrap();
        for &v in r.waveform(0).unwrap() {
            assert!((v - 1.0).abs() < 1e-9, "steady state drifted: {v}");
        }
    }

    #[test]
    fn rc_discharge_matches_analytic() {
        // Pulse source that turns OFF at t=0.1ns: v decays with τ = 1 ns
        // from 1.0 after the fall completes.
        use matex_waveform::Pulse;
        let mut nl = Netlist::new();
        let a = nl.node("a");
        // Current on from t=0 (v1 level before delay) — model the
        // turn-off as a falling pulse: starts at 1 mA, drops to 0.
        let p = Pulse::new(1e-3, 1e-3, 0.0, 1e-12, 1e-10, 1e-12).unwrap();
        // Constant 1 mA pulse (v1 == v2): steady.
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-10).unwrap();
        let r = BackwardEuler::new(1e-12).run(&sys, &spec).unwrap();
        // Steady 1 V (constant current).
        for &v in r.waveform(0).unwrap() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn stats_are_filled() {
        let sys = rc_circuit();
        let spec = TransientSpec::new(0.0, 1e-10, 1e-11).unwrap();
        let r = BackwardEuler::new(1e-11).run(&sys, &spec).unwrap();
        assert_eq!(r.stats.steps, 10);
        assert!(r.stats.factorizations >= 2);
        assert!(r.stats.substitution_pairs >= 10);
    }
}
