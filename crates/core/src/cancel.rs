//! Cooperative cancellation for in-flight transient runs.
//!
//! A scenario engine that admits work must also be able to take it
//! back: a client disconnects, a deadline passes, an operator sheds
//! load. Preemption is off the table — a solver mid-factorization owns
//! scratch buffers and shared caches — so cancellation is cooperative:
//! the engine hands the solver a [`CancelToken`] and the solver polls
//! it at safe boundaries (between transient steps in
//! [`MatexSolver`](crate::MatexSolver)'s march; between node runs in
//! `matex-dist`'s worker loop). A tripped token makes the run return
//! [`CoreError::Cancelled`](crate::CoreError::Cancelled) promptly —
//! within one transient-step boundary — with every resource released
//! by ordinary drop order, and never poisons any cached artifact: the
//! boundaries sit strictly after a setup/factorization is complete or
//! strictly before one begins.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared flag that asks a running job to stop at its next safe
/// boundary. Cloning is cheap and every clone observes the same flag.
///
/// # Example
///
/// ```
/// use matex_core::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        assert!(b.is_cancelled());
        // Idempotent.
        b.cancel();
        assert!(a.is_cancelled());
    }
}
