//! Reference solutions and error reporting.
//!
//! The paper reports accuracy against externally supplied solutions
//! (Table 1: BE at 0.05 ps; Table 3: the IBM benchmark `.solution`
//! files). Without the vendor files, the stand-in reference is a
//! fine-step run of an independent engine (see DESIGN.md §2).

use crate::engine::TransientEngine;
use crate::{BackwardEuler, CoreError, TransientResult, TransientSpec, Trapezoidal};
use matex_circuit::MnaSystem;

/// Which discretization generates the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReferenceMethod {
    /// Backward Euler (first order, very robust) — Table 1 style.
    BackwardEuler,
    /// Trapezoidal (second order) — tighter for smooth waveforms.
    #[default]
    Trapezoidal,
}

/// Computes a fine-step reference solution with `steps_per_sample`
/// integration steps per output sample.
///
/// # Errors
///
/// Propagates engine failures.
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{reference_solution, ReferenceMethod, TransientSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(3, 3).build()?;
/// let spec = TransientSpec::new(0.0, 1e-10, 1e-11)?;
/// let reference = reference_solution(&sys, &spec, ReferenceMethod::Trapezoidal, 10)?;
/// assert_eq!(reference.num_time_points(), 11);
/// # Ok(())
/// # }
/// ```
pub fn reference_solution(
    sys: &MnaSystem,
    spec: &TransientSpec,
    method: ReferenceMethod,
    steps_per_sample: usize,
) -> Result<TransientResult, CoreError> {
    let h = spec.dt_out() / steps_per_sample.max(1) as f64;
    match method {
        ReferenceMethod::BackwardEuler => BackwardEuler::new(h).run(sys, spec),
        ReferenceMethod::Trapezoidal => Trapezoidal::new(h).run(sys, spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::RcMeshBuilder;

    #[test]
    fn both_references_agree() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let spec = TransientSpec::new(0.0, 2e-10, 2e-11).unwrap();
        let be = reference_solution(&sys, &spec, ReferenceMethod::BackwardEuler, 40).unwrap();
        let tr = reference_solution(&sys, &spec, ReferenceMethod::Trapezoidal, 10).unwrap();
        let (max_err, _) = be.error_vs(&tr).unwrap();
        assert!(max_err < 1e-4, "references disagree: {max_err:.3e}");
    }
}
