//! Solver cost accounting.
//!
//! The paper's comparisons are phrased in these units (Sec. 3.4): pairs of
//! forward/backward substitutions (`T_bs`), small-exponential evaluations
//! (`T_H + T_e`), matrix factorizations, and Krylov basis dimensions
//! (`m_a`, `m_p` in Table 1). Every engine fills in a [`SolveStats`] so
//! benches can report exactly the paper's columns.

use std::time::Duration;

/// Cost counters and timings for one transient run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Sparse LU factorizations performed (full or numeric-replay).
    pub factorizations: usize,
    /// Of those, how many were cheap numeric refactorizations replaying
    /// a shared symbolic analysis (two-phase LU fast path).
    pub refactorizations: usize,
    /// Pairs of forward/backward substitutions (the `T_bs` unit).
    pub substitution_pairs: usize,
    /// Accepted time steps (fixed-step engines) or evaluation points
    /// (MATEX).
    pub steps: usize,
    /// Rejected steps (adaptive engines).
    pub rejected_steps: usize,
    /// Krylov subspaces generated.
    pub krylov_bases: usize,
    /// Sum of generated Krylov dimensions (for `m_a` = average).
    pub krylov_dim_sum: usize,
    /// Peak Krylov dimension (`m_p` of Table 1).
    pub krylov_dim_peak: usize,
    /// Small-exponential evaluations (`T_H + T_e` events).
    pub expm_evals: usize,
    /// Sub-step bisections forced by non-converged subspaces.
    pub substeps: usize,
    /// Wall time of DC analysis.
    pub dc_time: Duration,
    /// Wall time of matrix factorization(s).
    pub factor_time: Duration,
    /// Wall time of the transient computation after factorization (the
    /// paper's "pure transient computing" column).
    pub transient_time: Duration,
    /// Of the transient time, wall time spent in small projected
    /// exponentials — the per-snapshot `e^{h·Hm}e₁` columns and the
    /// sub-step squaring ladder (the paper's `T_H` term). MATEX only;
    /// zero for the companion-model engines.
    pub expm_time: Duration,
    /// Of the transient time, wall time spent materializing accepted
    /// snapshots: the basis combination itself plus the
    /// particular-solution (`P(h)`) application and output recording
    /// (the paper's `T_e` term). MATEX only.
    pub combine_time: Duration,
}

impl SolveStats {
    /// Average Krylov dimension `m_a` (0 when no bases were built).
    pub fn krylov_dim_avg(&self) -> f64 {
        if self.krylov_bases == 0 {
            0.0
        } else {
            self.krylov_dim_sum as f64 / self.krylov_bases as f64
        }
    }

    /// Total wall time (DC + factorization + transient).
    pub fn total_time(&self) -> Duration {
        self.dc_time + self.factor_time + self.transient_time
    }

    /// Merges counters from another run (used when summing distributed
    /// subtask costs).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
        self.substitution_pairs += other.substitution_pairs;
        self.steps += other.steps;
        self.rejected_steps += other.rejected_steps;
        self.krylov_bases += other.krylov_bases;
        self.krylov_dim_sum += other.krylov_dim_sum;
        self.krylov_dim_peak = self.krylov_dim_peak.max(other.krylov_dim_peak);
        self.expm_evals += other.expm_evals;
        self.substeps += other.substeps;
        self.dc_time += other.dc_time;
        self.factor_time += other.factor_time;
        self.transient_time += other.transient_time;
        self.expm_time += other.expm_time;
        self.combine_time += other.combine_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut s = SolveStats::default();
        assert_eq!(s.krylov_dim_avg(), 0.0);
        s.krylov_bases = 4;
        s.krylov_dim_sum = 40;
        assert_eq!(s.krylov_dim_avg(), 10.0);
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = SolveStats {
            substitution_pairs: 10,
            krylov_dim_peak: 5,
            ..SolveStats::default()
        };
        let b = SolveStats {
            substitution_pairs: 7,
            krylov_dim_peak: 9,
            ..SolveStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.substitution_pairs, 17);
        assert_eq!(a.krylov_dim_peak, 9);
    }
}
