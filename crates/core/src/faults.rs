//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] names exactly which failures fire and where: explicit
//! `(site, occurrence-index) → FaultKind` entries plus an optional seeded
//! probabilistic schedule that derives fire/no-fire decisions from an FNV
//! hash of `(seed, site, occurrence)` — the same plan always produces the
//! same fault sequence, so recovery tests are replayable bit-for-bit.
//!
//! The plan is consulted through a [`FaultHook`], modelled on
//! [`CancelToken`](crate::CancelToken): a cheap `Clone` handle that is
//! threaded through option structs (`MatexOptions`, `DistributedOptions`,
//! `EngineOptions`, `StoreOptions`) and defaults to a disarmed no-op so
//! production paths pay one branch per site. Each call to
//! [`FaultHook::check`] advances the per-site occurrence counter; the
//! counters are shared across clones, so a hook handed to eight workers
//! still sees one global occurrence stream per site.
//!
//! Sites are plain strings (`"dist.node"`, `"store.write"`, …) declared at
//! the point of injection; the hook does not enumerate them up front, so a
//! plan can target sites that did not exist when it was written (they
//! simply never fire).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a panic — exercises `catch_unwind` supervision.
    Panic,
    /// Return the site's natural error (`NotFinite`, `io::Error`, …).
    Error,
}

/// A deterministic schedule of injected failures.
///
/// Two layers compose:
/// - **explicit entries** pin a fault to one `(site, occurrence)` pair —
///   occurrence indices are 0-based per site;
/// - a **seeded schedule** fires [`FaultKind::Error`]-or-[`FaultKind::Panic`]
///   (as configured) on roughly `rate_per_mille`/1000 of the occurrences at
///   the listed sites, decided by hashing `(seed, site, occurrence)` so the
///   pattern is reproducible across runs, thread counts and machines.
///
/// Explicit entries win over the seeded schedule at the same coordinate.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(String, u64, FaultKind)>,
    seed: u64,
    rate_per_mille: u16,
    seeded_kind: Option<FaultKind>,
    seeded_sites: Vec<String>,
}

impl FaultPlan {
    /// An empty plan: nothing ever fires.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `kind` to fire at the `occurrence`-th consultation (0-based)
    /// of `site`.
    #[must_use]
    pub fn fail_at(mut self, site: &str, occurrence: u64, kind: FaultKind) -> Self {
        self.entries.push((site.to_string(), occurrence, kind));
        self
    }

    /// Arms the seeded probabilistic schedule: roughly `rate_per_mille`
    /// out of every 1000 occurrences fire `kind`, chosen by a hash of
    /// `(seed, site, occurrence)`. Restrict it with
    /// [`on_sites`](Self::on_sites); unrestricted it applies to every site.
    #[must_use]
    pub fn seeded(mut self, seed: u64, rate_per_mille: u16, kind: FaultKind) -> Self {
        self.seed = seed;
        self.rate_per_mille = rate_per_mille.min(1000);
        self.seeded_kind = Some(kind);
        self
    }

    /// Limits the seeded schedule to `sites` (explicit entries are
    /// unaffected).
    #[must_use]
    pub fn on_sites(mut self, sites: &[&str]) -> Self {
        self.seeded_sites = sites.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// True when the plan can never fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.seeded_kind.is_none()
    }

    fn kind_for(&self, site: &str, occurrence: u64) -> Option<FaultKind> {
        if let Some(&(_, _, kind)) = self
            .entries
            .iter()
            .find(|(s, o, _)| s == site && *o == occurrence)
        {
            return Some(kind);
        }
        let kind = self.seeded_kind?;
        if !self.seeded_sites.is_empty() && !self.seeded_sites.iter().any(|s| s == site) {
            return None;
        }
        (fnv(self.seed, site, occurrence) % 1000 < u64::from(self.rate_per_mille)).then_some(kind)
    }
}

/// FNV-1a over `(seed, site, occurrence)` — stable across platforms, so a
/// seeded schedule replays identically everywhere.
fn fnv(seed: u64, site: &str, occurrence: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in seed
        .to_le_bytes()
        .iter()
        .chain(site.as_bytes())
        .chain(&occurrence.to_le_bytes())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[derive(Debug)]
struct HookInner {
    plan: FaultPlan,
    occurrences: Mutex<HashMap<String, u64>>,
    injected: AtomicU64,
}

/// Injectable handle consulting a [`FaultPlan`] at named sites.
///
/// `Default` is disarmed: [`check`](Self::check) returns `None` without
/// locking anything, so leaving the hook in an options struct costs one
/// `Option` branch on the hot path. Clones share the plan, the per-site
/// occurrence counters and the injected-fault tally.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    inner: Option<Arc<HookInner>>,
}

impl FaultHook {
    /// Arms the hook with `plan`. An empty plan yields a disarmed hook.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        if plan.is_empty() {
            return Self::default();
        }
        Self {
            inner: Some(Arc::new(HookInner {
                plan,
                occurrences: Mutex::new(HashMap::new()),
                injected: AtomicU64::new(0),
            })),
        }
    }

    /// True when a plan is attached (even one that happens never to fire).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Consults the plan at `site`, advancing the site's occurrence
    /// counter. Returns the fault to inject, if any; the caller decides
    /// what "panic" or "error" means at its site.
    #[must_use]
    pub fn check(&self, site: &str) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let occurrence = {
            let mut counts = inner.occurrences.lock().expect("fault counters poisoned");
            let slot = counts.entry(site.to_string()).or_insert(0);
            let occurrence = *slot;
            *slot += 1;
            occurrence
        };
        let kind = inner.plan.kind_for(site, occurrence);
        if kind.is_some() {
            inner.injected.fetch_add(1, Ordering::Relaxed);
        }
        kind
    }

    /// Total faults fired so far, across all sites and clones.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }

    /// How many times `site` has been consulted so far.
    #[must_use]
    pub fn occurrences(&self, site: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.occurrences
                .lock()
                .expect("fault counters poisoned")
                .get(site)
                .copied()
                .unwrap_or(0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hook_never_fires() {
        let hook = FaultHook::default();
        assert!(!hook.is_armed());
        for _ in 0..100 {
            assert_eq!(hook.check("dist.node"), None);
        }
        assert_eq!(hook.injected(), 0);
        assert_eq!(hook.occurrences("dist.node"), 0);
        // An empty plan degrades to the same disarmed no-op.
        assert!(!FaultHook::new(FaultPlan::new()).is_armed());
    }

    #[test]
    fn explicit_entries_fire_at_their_occurrence_only() {
        let plan = FaultPlan::new()
            .fail_at("dist.node", 2, FaultKind::Panic)
            .fail_at("store.write", 0, FaultKind::Error);
        let hook = FaultHook::new(plan);
        assert!(hook.is_armed());
        assert_eq!(hook.check("dist.node"), None);
        assert_eq!(hook.check("dist.node"), None);
        assert_eq!(hook.check("dist.node"), Some(FaultKind::Panic));
        assert_eq!(hook.check("dist.node"), None);
        assert_eq!(hook.check("store.write"), Some(FaultKind::Error));
        assert_eq!(hook.check("store.write"), None);
        assert_eq!(hook.injected(), 2);
        assert_eq!(hook.occurrences("dist.node"), 4);
        assert_eq!(hook.occurrences("store.write"), 2);
    }

    #[test]
    fn occurrence_counters_are_shared_across_clones() {
        let hook = FaultHook::new(FaultPlan::new().fail_at("s", 3, FaultKind::Error));
        let clone = hook.clone();
        assert_eq!(hook.check("s"), None);
        assert_eq!(clone.check("s"), None);
        assert_eq!(hook.check("s"), None);
        assert_eq!(clone.check("s"), Some(FaultKind::Error));
        assert_eq!(hook.injected(), 1);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_roughly_rated() {
        let plan = FaultPlan::new().seeded(42, 100, FaultKind::Error);
        let a = FaultHook::new(plan.clone());
        let b = FaultHook::new(plan);
        let fired_a: Vec<bool> = (0..1000).map(|_| a.check("x").is_some()).collect();
        let fired_b: Vec<bool> = (0..1000).map(|_| b.check("x").is_some()).collect();
        assert_eq!(fired_a, fired_b, "same seed must replay identically");
        let fired = fired_a.iter().filter(|f| **f).count();
        // 100‰ nominal; the FNV stream should land in a loose band.
        assert!((40..=250).contains(&fired), "fired {fired}/1000 at 100‰");
        // A different seed produces a different pattern.
        let c = FaultHook::new(FaultPlan::new().seeded(43, 100, FaultKind::Error));
        let fired_c: Vec<bool> = (0..1000).map(|_| c.check("x").is_some()).collect();
        assert_ne!(fired_a, fired_c);
    }

    #[test]
    fn seeded_schedule_respects_site_restriction() {
        let plan = FaultPlan::new()
            .seeded(7, 1000, FaultKind::Panic)
            .on_sites(&["dist.node"]);
        let hook = FaultHook::new(plan);
        assert_eq!(hook.check("store.write"), None);
        assert_eq!(hook.check("dist.node"), Some(FaultKind::Panic));
    }

    #[test]
    fn explicit_entry_overrides_seeded_schedule() {
        // Rate 1000‰ fires everywhere; the explicit entry still decides
        // the kind at its coordinate.
        let plan =
            FaultPlan::new()
                .seeded(1, 1000, FaultKind::Error)
                .fail_at("s", 0, FaultKind::Panic);
        let hook = FaultHook::new(plan);
        assert_eq!(hook.check("s"), Some(FaultKind::Panic));
        assert_eq!(hook.check("s"), Some(FaultKind::Error));
    }
}
