//! Shared engine infrastructure: the [`TransientEngine`] trait, masked
//! input evaluation, and output-grid recording.

use crate::{CoreError, TransientResult, TransientSpec};
use matex_circuit::MnaSystem;

/// A transient simulation engine.
///
/// All engines consume the same `C x' = -G x + B u(t)` system and emit
/// results on the spec's sample grid, so they are interchangeable in
/// benches and in the distributed framework.
pub trait TransientEngine {
    /// Runs the transient analysis.
    ///
    /// # Errors
    ///
    /// Engine-specific; see the concrete types.
    fn run(&self, sys: &MnaSystem, spec: &TransientSpec) -> Result<TransientResult, CoreError>;

    /// Short engine label for reports (e.g. `"TR"`, `"R-MATEX"`).
    fn name(&self) -> String;
}

/// Evaluates the input vector `u(t)` and right-hand side `B u(t)`,
/// optionally restricted to a subset of source columns (the superposition
/// mask of a distributed subtask).
#[derive(Debug, Clone)]
pub struct InputEval<'a> {
    sys: &'a MnaSystem,
    mask: Option<&'a [usize]>,
}

impl<'a> InputEval<'a> {
    /// Full-input evaluator.
    pub fn new(sys: &'a MnaSystem) -> Self {
        InputEval { sys, mask: None }
    }

    /// Evaluator with only the listed source columns active.
    pub fn masked(sys: &'a MnaSystem, members: &'a [usize]) -> Self {
        InputEval {
            sys,
            mask: Some(members),
        }
    }

    /// The (masked) input vector `u(t)`.
    pub fn u_at(&self, t: f64) -> Vec<f64> {
        match self.mask {
            None => self.sys.input_at(t),
            Some(members) => self.sys.input_masked_at(t, members),
        }
    }

    /// The (masked) right-hand side `B u(t)`.
    pub fn bu_at(&self, t: f64) -> Vec<f64> {
        self.sys.b().matvec(&self.u_at(t))
    }

    /// Allocation-free variant of [`InputEval::bu_at`]: fills `out` with
    /// `B u(t)` using `u` (length [`InputEval::num_sources`]) as the input
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != num_sources()` or `out` does not match the
    /// system dimension.
    pub fn bu_into(&self, t: f64, out: &mut [f64], u: &mut [f64]) {
        match self.mask {
            None => self.sys.input_into(t, u),
            Some(members) => self.sys.input_masked_into(t, members, u),
        }
        self.sys.b().matvec_into(u, out);
    }

    /// Number of source columns of the underlying system (masked or not —
    /// the mask zeroes entries, it does not shrink the vector).
    pub fn num_sources(&self) -> usize {
        self.sys.num_sources()
    }

    /// Active source column indices.
    pub fn active_columns(&self) -> Vec<usize> {
        match self.mask {
            None => (0..self.sys.num_sources()).collect(),
            Some(members) => members.to_vec(),
        }
    }
}

/// Records solution values onto the spec's output sample grid, linearly
/// interpolating when an engine's accepted steps do not land on samples.
#[derive(Debug)]
pub struct Recorder {
    sample_times: Vec<f64>,
    rows: Vec<usize>,
    series: Vec<Vec<f64>>,
    next: usize,
}

impl Recorder {
    /// Creates a recorder for the spec over a system of dimension `dim`.
    pub fn new(spec: &TransientSpec, dim: usize) -> Self {
        let sample_times = spec.sample_times();
        let rows = spec.observed_rows(dim);
        // Not `vec![Vec::with_capacity(..); k]`: cloning an empty Vec
        // drops its capacity, which would make recording reallocate as
        // samples accumulate (the hot path must stay allocation-free).
        let series = (0..rows.len())
            .map(|_| Vec::with_capacity(sample_times.len()))
            .collect();
        Recorder {
            sample_times,
            rows,
            series,
            next: 0,
        }
    }

    /// The output grid.
    pub fn sample_times(&self) -> &[f64] {
        &self.sample_times
    }

    /// `true` once every sample has been filled.
    pub fn is_complete(&self) -> bool {
        self.next >= self.sample_times.len()
    }

    /// Time of the next unfilled sample, if any.
    pub fn next_sample(&self) -> Option<f64> {
        self.sample_times.get(self.next).copied()
    }

    /// Records the exact state at the next sample time.
    ///
    /// # Panics
    ///
    /// Panics if all samples are already filled or `t` is not (close to)
    /// the next sample time.
    pub fn record_at_sample(&mut self, t: f64, x: &[f64]) {
        let expect = self.sample_times[self.next];
        assert!(
            (t - expect).abs() <= 1e-9 * expect.abs().max(1e-30) + 1e-30,
            "record_at_sample: t = {t} but next sample is {expect}"
        );
        for (k, &row) in self.rows.iter().enumerate() {
            self.series[k].push(x[row]);
        }
        self.next += 1;
    }

    /// Records an accepted step `(t0, x0) → (t1, x1)`, filling every
    /// sample in `(t0, t1]` by linear interpolation. Call once with
    /// `t0 == t1 == t_start` to capture an initial sample.
    pub fn record_step(&mut self, t0: f64, x0: &[f64], t1: f64, x1: &[f64]) {
        while let Some(ts) = self.next_sample() {
            let within = if t0 == t1 {
                (ts - t1).abs() <= 1e-12 * t1.abs().max(1e-30) + 1e-300
            } else {
                ts <= t1 + 1e-12 * t1.abs().max(1e-30)
            };
            if !within {
                break;
            }
            let w = if t1 == t0 {
                1.0
            } else {
                ((ts - t0) / (t1 - t0)).clamp(0.0, 1.0)
            };
            for (k, &row) in self.rows.iter().enumerate() {
                self.series[k].push(x0[row] * (1.0 - w) + x1[row] * w);
            }
            self.next += 1;
        }
    }

    /// Finalizes into `(times, rows, series)`.
    ///
    /// # Panics
    ///
    /// Panics if any sample was left unfilled (engine bug).
    pub fn finish(self) -> (Vec<f64>, Vec<usize>, Vec<Vec<f64>>) {
        assert!(
            self.is_complete(),
            "recorder: {} of {} samples unfilled",
            self.sample_times.len() - self.next,
            self.sample_times.len()
        );
        (self.sample_times, self.rows, self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::Netlist;
    use matex_waveform::Waveform;

    fn two_source_sys() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1.0))
            .unwrap();
        nl.add_isource("i2", Netlist::ground(), a, Waveform::Dc(10.0))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn masked_input_eval() {
        let sys = two_source_sys();
        let full = InputEval::new(&sys);
        assert_eq!(full.bu_at(0.0), vec![11.0]);
        let members = [1usize];
        let sub = InputEval::masked(&sys, &members);
        assert_eq!(sub.bu_at(0.0), vec![10.0]);
        assert_eq!(sub.active_columns(), vec![1]);
    }

    #[test]
    fn recorder_interpolates() {
        let spec = TransientSpec::new(0.0, 1.0, 0.5).unwrap();
        let mut rec = Recorder::new(&spec, 1);
        let x0 = [0.0];
        rec.record_step(0.0, &x0, 0.0, &x0); // initial point
        let x1 = [2.0];
        rec.record_step(0.0, &x0, 0.8, &x1); // covers sample 0.5
        let x2 = [3.0];
        rec.record_step(0.8, &x1, 1.0, &x2); // covers sample 1.0
        let (times, rows, series) = rec.finish();
        assert_eq!(times, vec![0.0, 0.5, 1.0]);
        assert_eq!(rows, vec![0]);
        assert_eq!(series[0], vec![0.0, 1.25, 3.0]);
    }

    #[test]
    fn recorder_exact_samples() {
        let spec = TransientSpec::new(0.0, 1.0, 1.0).unwrap();
        let mut rec = Recorder::new(&spec, 2);
        rec.record_at_sample(0.0, &[1.0, 2.0]);
        rec.record_at_sample(1.0, &[3.0, 4.0]);
        let (_, _, series) = rec.finish();
        assert_eq!(series[0], vec![1.0, 3.0]);
        assert_eq!(series[1], vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "unfilled")]
    fn unfinished_recorder_panics() {
        let spec = TransientSpec::new(0.0, 1.0, 0.5).unwrap();
        let rec = Recorder::new(&spec, 1);
        let _ = rec.finish();
    }
}
