//! Transient results.

use crate::{CoreError, SolveStats};

/// The recorded outcome of a transient run.
///
/// Holds the observed waveforms sampled on the spec's output grid, the
/// final full state, and the cost counters. Two results from the same
/// spec are directly comparable ([`TransientResult::error_vs`]) and
/// summable ([`TransientResult::add_scaled`] — the superposition
/// operation of distributed MATEX).
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    rows: Vec<usize>,
    /// `series[k][i]` = value of state row `rows[k]` at `times[i]`.
    series: Vec<Vec<f64>>,
    final_state: Vec<f64>,
    /// Cost counters.
    pub stats: SolveStats,
    /// Engine label (for reports).
    pub engine: String,
}

impl TransientResult {
    /// Assembles a result.
    ///
    /// # Panics
    ///
    /// Panics if series shapes disagree with `times`/`rows`.
    pub fn new(
        engine: impl Into<String>,
        times: Vec<f64>,
        rows: Vec<usize>,
        series: Vec<Vec<f64>>,
        final_state: Vec<f64>,
        stats: SolveStats,
    ) -> Self {
        assert_eq!(rows.len(), series.len(), "rows/series mismatch");
        for s in &series {
            assert_eq!(s.len(), times.len(), "series length mismatch");
        }
        TransientResult {
            times,
            rows,
            series,
            final_state,
            stats,
            engine: engine.into(),
        }
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Observed state rows.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Number of recorded time points.
    pub fn num_time_points(&self) -> usize {
        self.times.len()
    }

    /// Waveform of observed row `row`, if recorded.
    pub fn waveform(&self, row: usize) -> Option<&[f64]> {
        self.rows
            .iter()
            .position(|&r| r == row)
            .map(|k| self.series[k].as_slice())
    }

    /// All series, aligned with [`TransientResult::rows`].
    pub fn series(&self) -> &[Vec<f64>] {
        &self.series
    }

    /// Final full state vector.
    pub fn final_state(&self) -> &[f64] {
        &self.final_state
    }

    /// Maximum and average absolute difference against a reference run
    /// over all shared observed rows and times.
    ///
    /// These are the `Max. Err` / `Avg. Err` columns of the paper's
    /// Table 3.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incomparable`] when the time grids differ or
    /// no rows are shared.
    pub fn error_vs(&self, reference: &TransientResult) -> Result<(f64, f64), CoreError> {
        if self.times.len() != reference.times.len() {
            return Err(CoreError::Incomparable(format!(
                "time grids differ: {} vs {} points",
                self.times.len(),
                reference.times.len()
            )));
        }
        for (a, b) in self.times.iter().zip(&reference.times) {
            if (a - b).abs() > 1e-9 * b.abs().max(1e-30) {
                return Err(CoreError::Incomparable(format!(
                    "time grids differ at t = {a} vs {b}"
                )));
            }
        }
        let mut max_err = 0.0_f64;
        let mut sum = 0.0_f64;
        let mut count = 0usize;
        let mut shared = 0usize;
        for (k, &row) in self.rows.iter().enumerate() {
            let Some(rk) = reference.rows.iter().position(|&r| r == row) else {
                continue;
            };
            shared += 1;
            for (a, b) in self.series[k].iter().zip(&reference.series[rk]) {
                let e = (a - b).abs();
                max_err = max_err.max(e);
                sum += e;
                count += 1;
            }
        }
        if shared == 0 {
            return Err(CoreError::Incomparable("no shared observed rows".into()));
        }
        Ok((max_err, sum / count.max(1) as f64))
    }

    /// Adds `scale · other` into this result (series and final state):
    /// the superposition step of distributed MATEX.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incomparable`] when grids, rows, or state
    /// dimensions differ.
    pub fn add_scaled(&mut self, other: &TransientResult, scale: f64) -> Result<(), CoreError> {
        if self.times.len() != other.times.len()
            || self.rows != other.rows
            || self.final_state.len() != other.final_state.len()
        {
            return Err(CoreError::Incomparable(
                "superposition requires identical grids, rows and dimensions".into(),
            ));
        }
        for (mine, theirs) in self.series.iter_mut().zip(&other.series) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += scale * b;
            }
        }
        for (a, b) in self.final_state.iter_mut().zip(&other.final_state) {
            *a += scale * b;
        }
        Ok(())
    }

    /// A zero result on the same grid/rows (identity for superposition).
    pub fn zeros_like(&self) -> TransientResult {
        TransientResult {
            times: self.times.clone(),
            rows: self.rows.clone(),
            series: vec![vec![0.0; self.times.len()]; self.rows.len()],
            final_state: vec![0.0; self.final_state.len()],
            stats: SolveStats::default(),
            engine: self.engine.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(vals: &[f64]) -> TransientResult {
        TransientResult::new(
            "test",
            vec![0.0, 1.0],
            vec![0],
            vec![vals.to_vec()],
            vec![*vals.last().unwrap()],
            SolveStats::default(),
        )
    }

    #[test]
    fn error_metrics() {
        let a = sample(&[1.0, 2.0]);
        let b = sample(&[1.5, 2.25]);
        let (mx, avg) = a.error_vs(&b).unwrap();
        assert_eq!(mx, 0.5);
        assert_eq!(avg, 0.375);
    }

    #[test]
    fn superposition_adds() {
        let mut a = sample(&[1.0, 2.0]);
        let b = sample(&[0.5, 0.25]);
        a.add_scaled(&b, 2.0).unwrap();
        assert_eq!(a.waveform(0).unwrap(), &[2.0, 2.5]);
        assert_eq!(a.final_state(), &[2.5]);
    }

    #[test]
    fn incompatible_rejected() {
        let a = sample(&[1.0, 2.0]);
        let mut b = sample(&[1.0, 2.0]);
        b.times = vec![0.0, 2.0];
        assert!(a.error_vs(&b).is_err());
    }

    #[test]
    fn zeros_like_is_identity() {
        let a = sample(&[3.0, 4.0]);
        let mut z = a.zeros_like();
        z.add_scaled(&a, 1.0).unwrap();
        assert_eq!(z.waveform(0).unwrap(), a.waveform(0).unwrap());
    }

    #[test]
    fn waveform_lookup() {
        let a = sample(&[1.0, 2.0]);
        assert!(a.waveform(0).is_some());
        assert!(a.waveform(5).is_none());
    }
}
