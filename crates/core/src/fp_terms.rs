//! The PWL input terms `F(t)` and `P(t, h)` of the matrix-exponential
//! update (paper Eq. (5)), computed regularization-free.
//!
//! With `A = −C⁻¹G` and `b(t) = C⁻¹B u(t)`, the closed-form update for a
//! piecewise-linear input of slope `u̇` on `[t, t+h]` is
//!
//! ```text
//! x(t+h) = e^{hA} (x(t) + F(t)) − P(t, h)
//! F(t)   = A⁻¹ b(t)   + A⁻² s
//! P(t,h) = A⁻¹ b(t+h) + A⁻² s,      s = (b(t+h) − b(t))/h
//! ```
//!
//! The paper's Sec. 3.3.3 observation makes these computable without ever
//! forming `C⁻¹`:
//!
//! ```text
//! A⁻¹ b(t) = −G⁻¹ B u(t)              A⁻² s = G⁻¹ C G⁻¹ B u̇
//! ```
//!
//! so one interval costs three forward/backward substitution pairs with
//! the *already factored* `G` (two when the input slope is zero).

use crate::engine::InputEval;
use crate::SolveStats;
use matex_circuit::MnaSystem;
use matex_sparse::SparseLu;

/// Precomputed input terms for one linear interval `[t0, t1]`.
#[derive(Debug, Clone)]
pub struct IntervalTerms {
    /// `q0 = G⁻¹ B u(t0)`.
    q0: Vec<f64>,
    /// `qd = G⁻¹ B u̇` (zero vector when the slope is zero).
    qd: Vec<f64>,
    /// `r = G⁻¹ C qd = A⁻² s`.
    r: Vec<f64>,
    /// Interval start.
    t0: f64,
}

impl IntervalTerms {
    /// Computes the terms for the interval `[t0, t1]`, on which the
    /// (masked) input must be linear. Updates substitution counters in
    /// `stats`.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0`.
    pub fn compute(
        sys: &MnaSystem,
        lu_g: &SparseLu,
        input: &InputEval<'_>,
        t0: f64,
        t1: f64,
        stats: &mut SolveStats,
    ) -> IntervalTerms {
        assert!(t1 > t0, "interval must have positive length");
        let n = sys.dim();
        let bu0 = input.bu_at(t0);
        let bu1 = input.bu_at(t1);
        let mut du: Vec<f64> = bu1.iter().zip(&bu0).map(|(a, b)| (a - b) / (t1 - t0)).collect();
        let q0 = lu_g.solve(&bu0);
        stats.substitution_pairs += 1;
        let slope_zero = du.iter().all(|&v| v == 0.0);
        let (qd, r) = if slope_zero {
            (vec![0.0; n], vec![0.0; n])
        } else {
            let qd = lu_g.solve(&du);
            stats.substitution_pairs += 1;
            sys.c().matvec_into(&qd, &mut du);
            let r = lu_g.solve(&du);
            stats.substitution_pairs += 1;
            (qd, r)
        };
        IntervalTerms { q0, qd, r, t0 }
    }

    /// `F(t0) = −q0 + r`: added to the state before projection.
    pub fn f(&self) -> Vec<f64> {
        self.q0
            .iter()
            .zip(&self.r)
            .map(|(q, r)| -q + r)
            .collect()
    }

    /// `P(t0, h) = −(q0 + h·qd) + r`: subtracted after projection.
    ///
    /// # Panics
    ///
    /// Panics if `h < 0`.
    pub fn p(&self, h: f64) -> Vec<f64> {
        assert!(h >= 0.0, "P requires a non-negative step");
        let mut out = Vec::with_capacity(self.q0.len());
        for i in 0..self.q0.len() {
            out.push(-(self.q0[i] + h * self.qd[i]) + self.r[i]);
        }
        out
    }

    /// Interval start time.
    pub fn t0(&self) -> f64 {
        self.t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::Netlist;
    use matex_sparse::LuOptions;
    use matex_waveform::{Pulse, Waveform};

    fn rc() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.0, 2e-3, 0.0, 1e-9, 1e-9, 1e-9).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 500.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn steady_state_identity() {
        // For constant input: F = -q0 and P(h) = -q0, and the DC solution
        // is exactly q0, so v = x_dc + F = 0.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, 0.0, 1e-9, &mut stats);
        let x_dc = lu_g.solve(&input.bu_at(0.0));
        let f = terms.f();
        for i in 0..sys.dim() {
            assert!((x_dc[i] + f[i]).abs() < 1e-15, "steady-state v != 0");
        }
        // Constant slope: only one substitution pair spent.
        assert_eq!(stats.substitution_pairs, 1);
    }

    #[test]
    fn ramp_terms_match_definitions() {
        // During the rising ramp, verify F/P against directly computed
        // -G^{-1}Bu and G^{-1}CG^{-1}Bu̇.
        let sys = rc();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let (t0, t1) = (2e-10, 6e-10); // inside the 0..1ns ramp
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, t0, t1, &mut stats);
        assert_eq!(stats.substitution_pairs, 3);
        // Manual computation.
        let bu0 = input.bu_at(t0);
        let q0 = lu_g.solve(&bu0);
        let udot: Vec<f64> = input
            .bu_at(t1)
            .iter()
            .zip(&bu0)
            .map(|(a, b)| (a - b) / (t1 - t0))
            .collect();
        let qd = lu_g.solve(&udot);
        let r = lu_g.solve(&sys.c().matvec(&qd));
        let f = terms.f();
        for i in 0..sys.dim() {
            assert!((f[i] - (-q0[i] + r[i])).abs() < 1e-18);
        }
        let h = 1e-10;
        let p = terms.p(h);
        for i in 0..sys.dim() {
            assert!((p[i] - (-(q0[i] + h * qd[i]) + r[i])).abs() < 1e-18);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_step_panics() {
        let sys = rc();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, 0.0, 1e-9, &mut stats);
        let _ = terms.p(-1.0);
    }
}
