//! The PWL input terms `F(t)` and `P(t, h)` of the matrix-exponential
//! update (paper Eq. (5)), computed regularization-free.
//!
//! With `A = −C⁻¹G` and `b(t) = C⁻¹B u(t)`, the closed-form update for a
//! piecewise-linear input of slope `u̇` on `[t, t+h]` is
//!
//! ```text
//! x(t+h) = e^{hA} (x(t) + F(t)) − P(t, h)
//! F(t)   = A⁻¹ b(t)   + A⁻² s
//! P(t,h) = A⁻¹ b(t+h) + A⁻² s,      s = (b(t+h) − b(t))/h
//! ```
//!
//! The paper's Sec. 3.3.3 observation makes these computable without ever
//! forming `C⁻¹`:
//!
//! ```text
//! A⁻¹ b(t) = −G⁻¹ B u(t)              A⁻² s = G⁻¹ C G⁻¹ B u̇
//! ```
//!
//! so one interval costs three forward/backward substitution pairs with
//! the *already factored* `G` (two when the input slope is zero).
//!
//! This is the substitution **hot path** of the whole solver: one
//! [`IntervalTerms::recompute`] per input-linearity window, thousands of
//! windows per long run. The struct therefore owns all of its buffers —
//! term vectors *and* scratch — and recomputation performs **zero heap
//! allocations**: substitutions go through
//! [`SparseLu::solve_into`](matex_sparse::SparseLu::solve_into), the
//! input through [`InputEval::bu_into`], and the `C·qd` product through
//! `matvec_into` on a reused buffer (verified by the counting-allocator
//! test in `tests/alloc_free.rs`).

use crate::engine::InputEval;
use crate::SolveStats;
use matex_circuit::MnaSystem;
use matex_par::ParPool;
use matex_sparse::{SmwUpdate, SolveSchedule, SparseLu};

/// Precomputed input terms for one linear interval `[t0, t1]`, plus the
/// persistent scratch that makes recomputation allocation-free.
#[derive(Debug, Clone)]
pub struct IntervalTerms {
    /// `q0 = G⁻¹ B u(t0)`.
    q0: Vec<f64>,
    /// `qd = G⁻¹ B u̇` (zero vector when the slope is zero).
    qd: Vec<f64>,
    /// `r = G⁻¹ C qd = A⁻² s`.
    r: Vec<f64>,
    /// Interval start.
    t0: f64,
    /// Right-hand-side scratch (`B u`, then the slope, then `C qd`).
    rhs: Vec<f64>,
    /// Input-vector scratch (`u(t)`, one entry per source column).
    u: Vec<f64>,
    /// Substitution scratch for [`SparseLu::solve_into`].
    work: Vec<f64>,
}

impl IntervalTerms {
    /// Creates zeroed terms with all buffers sized for a system of
    /// dimension `dim` with `num_sources` input columns. The buffers are
    /// reused by every subsequent [`IntervalTerms::recompute`].
    pub fn new(dim: usize, num_sources: usize) -> IntervalTerms {
        IntervalTerms {
            q0: vec![0.0; dim],
            qd: vec![0.0; dim],
            r: vec![0.0; dim],
            t0: 0.0,
            rhs: vec![0.0; dim],
            u: vec![0.0; num_sources],
            work: vec![0.0; dim],
        }
    }

    /// Computes the terms for the interval `[t0, t1]`, on which the
    /// (masked) input must be linear. Updates substitution counters in
    /// `stats`. Allocates the buffers once; prefer
    /// [`IntervalTerms::new`] + [`IntervalTerms::recompute`] on hot
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0`.
    pub fn compute(
        sys: &MnaSystem,
        lu_g: &SparseLu,
        input: &InputEval<'_>,
        t0: f64,
        t1: f64,
        stats: &mut SolveStats,
    ) -> IntervalTerms {
        let mut terms = IntervalTerms::new(sys.dim(), input.num_sources());
        terms.recompute(sys, lu_g, input, t0, t1, stats);
        terms
    }

    /// Recomputes the terms for `[t0, t1]` in place, reusing every
    /// buffer: zero heap allocations per invocation.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0` or the system/input dimensions changed since
    /// construction.
    pub fn recompute(
        &mut self,
        sys: &MnaSystem,
        lu_g: &SparseLu,
        input: &InputEval<'_>,
        t0: f64,
        t1: f64,
        stats: &mut SolveStats,
    ) {
        self.recompute_with(sys, lu_g, input, t0, t1, stats, None);
    }

    /// [`IntervalTerms::recompute`] with an optional parallel context:
    /// the worker pool plus `lu_g`'s level-scheduled substitution plan.
    /// The substitutions then run level-parallel (bitwise identical to
    /// the serial path — see
    /// [`SparseLu::solve_into_par`](matex_sparse::SparseLu::solve_into_par))
    /// and the call remains allocation-free: the pool dispatches through
    /// a pre-allocated job slot and the solve reuses the same persistent
    /// scratch (`tests/alloc_free.rs` covers this path too).
    ///
    /// # Panics
    ///
    /// As [`IntervalTerms::recompute`].
    #[allow(clippy::too_many_arguments)]
    pub fn recompute_with(
        &mut self,
        sys: &MnaSystem,
        lu_g: &SparseLu,
        input: &InputEval<'_>,
        t0: f64,
        t1: f64,
        stats: &mut SolveStats,
        par: Option<(&ParPool, &SolveSchedule)>,
    ) {
        self.recompute_corrected(sys, lu_g, input, t0, t1, stats, par, None);
    }

    /// [`IntervalTerms::recompute_with`] with an optional
    /// Sherman–Morrison–Woodbury correction built against `lu_g`: each
    /// of the (up to three) substitution pairs is followed by
    /// [`SmwUpdate::correct_in_place`], so the terms come out for the
    /// *edited* `G` without refactoring — the what-if fast path. The
    /// correction's fixed evaluation order keeps the result bitwise
    /// identical across repeat calls and pool widths.
    ///
    /// # Panics
    ///
    /// As [`IntervalTerms::recompute`].
    #[allow(clippy::too_many_arguments)]
    pub fn recompute_corrected(
        &mut self,
        sys: &MnaSystem,
        lu_g: &SparseLu,
        input: &InputEval<'_>,
        t0: f64,
        t1: f64,
        stats: &mut SolveStats,
        par: Option<(&ParPool, &SolveSchedule)>,
        smw: Option<&SmwUpdate>,
    ) {
        assert!(t1 > t0, "interval must have positive length");
        self.t0 = t0;
        let solve = |b: &[f64], out: &mut [f64], work: &mut [f64]| {
            match par {
                None => lu_g.solve_into(b, out, work),
                Some((pool, sched)) => lu_g.solve_into_par(b, out, work, sched, pool),
            }
            if let Some(smw) = smw {
                smw.correct_in_place(out);
            }
        };
        // q0 = G⁻¹ B u(t0); keep B u(t0) in `qd` for the slope below.
        input.bu_into(t0, &mut self.qd, &mut self.u);
        solve(&self.qd, &mut self.q0, &mut self.work);
        stats.substitution_pairs += 1;
        // rhs = (B u(t1) − B u(t0)) / (t1 − t0)
        input.bu_into(t1, &mut self.rhs, &mut self.u);
        let h = t1 - t0;
        for (d, &b0) in self.rhs.iter_mut().zip(&self.qd) {
            *d = (*d - b0) / h;
        }
        if self.rhs.iter().all(|&v| v == 0.0) {
            self.qd.fill(0.0);
            self.r.fill(0.0);
        } else {
            // qd = G⁻¹ u̇-term, r = G⁻¹ C qd.
            solve(&self.rhs, &mut self.qd, &mut self.work);
            stats.substitution_pairs += 1;
            match par {
                None => sys.c().matvec_into(&self.qd, &mut self.rhs),
                Some((pool, _)) => sys.c().matvec_into_par(&self.qd, &mut self.rhs, pool),
            }
            solve(&self.rhs, &mut self.r, &mut self.work);
            stats.substitution_pairs += 1;
        }
    }

    /// `F(t0) = −q0 + r`: added to the state before projection.
    pub fn f(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.q0.len()];
        self.f_into(&mut out);
        out
    }

    /// Allocation-free variant of [`IntervalTerms::f`].
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length.
    pub fn f_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.q0.len(), "f_into: length mismatch");
        for ((o, q), r) in out.iter_mut().zip(&self.q0).zip(&self.r) {
            *o = -q + r;
        }
    }

    /// `P(t0, h) = −(q0 + h·qd) + r`: subtracted after projection.
    ///
    /// # Panics
    ///
    /// Panics if `h < 0`.
    pub fn p(&self, h: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.q0.len()];
        self.p_into(h, &mut out);
        out
    }

    /// Allocation-free variant of [`IntervalTerms::p`].
    ///
    /// # Panics
    ///
    /// Panics if `h < 0` or `out` has the wrong length.
    pub fn p_into(&self, h: f64, out: &mut [f64]) {
        assert!(h >= 0.0, "P requires a non-negative step");
        assert_eq!(out.len(), self.q0.len(), "p_into: length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = -(self.q0[i] + h * self.qd[i]) + self.r[i];
        }
    }

    /// Interval start time.
    pub fn t0(&self) -> f64 {
        self.t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::Netlist;
    use matex_sparse::LuOptions;
    use matex_waveform::{Pulse, Waveform};

    fn rc() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.0, 2e-3, 0.0, 1e-9, 1e-9, 1e-9).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 500.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn steady_state_identity() {
        // For constant input: F = -q0 and P(h) = -q0, and the DC solution
        // is exactly q0, so v = x_dc + F = 0.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, 0.0, 1e-9, &mut stats);
        let x_dc = lu_g.solve(&input.bu_at(0.0));
        let f = terms.f();
        for i in 0..sys.dim() {
            assert!((x_dc[i] + f[i]).abs() < 1e-15, "steady-state v != 0");
        }
        // Constant slope: only one substitution pair spent.
        assert_eq!(stats.substitution_pairs, 1);
    }

    #[test]
    fn ramp_terms_match_definitions() {
        // During the rising ramp, verify F/P against directly computed
        // -G^{-1}Bu and G^{-1}CG^{-1}Bu̇.
        let sys = rc();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let (t0, t1) = (2e-10, 6e-10); // inside the 0..1ns ramp
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, t0, t1, &mut stats);
        assert_eq!(stats.substitution_pairs, 3);
        // Manual computation.
        let bu0 = input.bu_at(t0);
        let q0 = lu_g.solve(&bu0);
        let udot: Vec<f64> = input
            .bu_at(t1)
            .iter()
            .zip(&bu0)
            .map(|(a, b)| (a - b) / (t1 - t0))
            .collect();
        let qd = lu_g.solve(&udot);
        let r = lu_g.solve(&sys.c().matvec(&qd));
        let f = terms.f();
        for i in 0..sys.dim() {
            assert!((f[i] - (-q0[i] + r[i])).abs() < 1e-18);
        }
        let h = 1e-10;
        let p = terms.p(h);
        for i in 0..sys.dim() {
            assert!((p[i] - (-(q0[i] + h * qd[i]) + r[i])).abs() < 1e-18);
        }
    }

    #[test]
    fn recompute_matches_fresh_compute() {
        // One struct recomputed across intervals (incl. a zero-slope one)
        // gives exactly the same terms as freshly computed ones.
        let sys = rc();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let mut reused = IntervalTerms::new(sys.dim(), input.num_sources());
        for (t0, t1) in [(0.0, 4e-10), (4e-10, 1e-9), (2.5e-9, 3e-9)] {
            reused.recompute(&sys, &lu_g, &input, t0, t1, &mut stats);
            let fresh = IntervalTerms::compute(&sys, &lu_g, &input, t0, t1, &mut stats);
            assert_eq!(reused.f(), fresh.f());
            assert_eq!(reused.p(7e-11), fresh.p(7e-11));
            assert_eq!(reused.t0(), fresh.t0());
        }
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let sys = rc();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, 1e-10, 6e-10, &mut stats);
        let mut buf = vec![0.0; sys.dim()];
        terms.f_into(&mut buf);
        assert_eq!(buf, terms.f());
        terms.p_into(3e-11, &mut buf);
        assert_eq!(buf, terms.p(3e-11));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_step_panics() {
        let sys = rc();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
        let input = InputEval::new(&sys);
        let mut stats = SolveStats::default();
        let terms = IntervalTerms::compute(&sys, &lu_g, &input, 0.0, 1e-9, &mut stats);
        let _ = terms.p(-1.0);
    }
}
