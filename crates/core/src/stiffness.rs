//! Circuit stiffness measurement.
//!
//! The paper defines stiffness as `Re(λ_min)/Re(λ_max)` of `A = −C⁻¹G`
//! (Sec. 4.1) — the spread between the fastest and slowest time constants.
//! For the (small) Table-1 meshes this module computes the spectrum
//! densely and reports the ratio.

use crate::CoreError;
use matex_circuit::MnaSystem;
use matex_dense::eig::eig_vals;
use matex_dense::DenseLu;

/// Measures stiffness `|Re(λ)|_max / |Re(λ)|_min` of `A = −C⁻¹G`.
///
/// The returned value matches the paper's Table-1 convention (a huge
/// number for stiff circuits; ≥ 1 always). Only eigenvalues with
/// `|Re λ| > 0` participate.
///
/// # Errors
///
/// * [`CoreError::InvalidOption`] if the system exceeds `max_dim`
///   (dense eigen-decomposition would be intractable) or has no usable
///   eigenvalues.
/// * Propagates dense failures (singular `C`) as [`CoreError`].
pub fn measure_stiffness(sys: &MnaSystem, max_dim: usize) -> Result<f64, CoreError> {
    let n = sys.dim();
    if n > max_dim {
        return Err(CoreError::InvalidOption(format!(
            "stiffness measurement needs dense eigenvalues; dim {n} > allowed {max_dim}"
        )));
    }
    let c = sys.c().to_dense();
    let g = sys.g().to_dense();
    let a = DenseLu::factor(&c)
        .and_then(|lu| lu.solve_mat(&g))
        .map_err(|e| CoreError::InvalidOption(format!("C must be nonsingular: {e}")))?
        .scaled(-1.0);
    let eigs = eig_vals(&a).map_err(|e| CoreError::InvalidOption(e.to_string()))?;
    let mut re_min = f64::INFINITY;
    let mut re_max = 0.0_f64;
    for (re, _) in eigs {
        let m = re.abs();
        if m > 1e-300 {
            re_min = re_min.min(m);
            re_max = re_max.max(m);
        }
    }
    if !re_max.is_finite() || re_max == 0.0 || !re_min.is_finite() {
        return Err(CoreError::InvalidOption(
            "no usable eigenvalues for stiffness".into(),
        ));
    }
    Ok(re_max / re_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::RcMeshBuilder;

    #[test]
    fn uniform_mesh_is_mildly_stiff() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let s = measure_stiffness(&sys, 100).unwrap();
        assert!(s >= 1.0);
        assert!(s < 1e6, "uniform mesh unexpectedly stiff: {s:.3e}");
    }

    #[test]
    fn stiffness_ratio_scales_measured_stiffness() {
        let mild = measure_stiffness(&RcMeshBuilder::new(4, 4).build().unwrap(), 100).unwrap();
        let stiff = measure_stiffness(
            &RcMeshBuilder::new(4, 4)
                .stiffness_ratio(1e8)
                .build()
                .unwrap(),
            100,
        )
        .unwrap();
        assert!(
            stiff > mild * 1e6,
            "stiffness did not scale: mild {mild:.3e}, stiff {stiff:.3e}"
        );
    }

    #[test]
    fn dimension_guard() {
        let sys = RcMeshBuilder::new(20, 20).build().unwrap();
        assert!(measure_stiffness(&sys, 100).is_err());
    }
}
