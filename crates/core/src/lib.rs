//! MATEX transient-simulation engines.
//!
//! Four interchangeable engines over the MNA system `C x' = -G x + B u(t)`:
//!
//! * [`BackwardEuler`] — fixed-step BE (accuracy reference),
//! * [`Trapezoidal`] — fixed-step TR, the TAU-contest-style baseline the
//!   paper compares against (Table 3),
//! * [`TrapezoidalAdaptive`] — LTE-controlled TR that re-factorizes on
//!   step changes (Table 2 baseline),
//! * [`MatexSolver`] — the paper's contribution: matrix-exponential
//!   stepping with standard/inverted/rational Krylov subspaces, subspace
//!   reuse at snapshots, and *zero* refactorization.
//!
//! Plus shared plumbing: [`TransientSpec`] / [`TransientResult`] /
//! [`SolveStats`] and the superposition-ready source masking that the
//! distributed framework builds on.
//!
//! # Example
//!
//! ```
//! use matex_circuit::RcMeshBuilder;
//! use matex_core::{
//!     BackwardEuler, KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = RcMeshBuilder::new(4, 4).build()?;
//! let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
//! let matex = MatexSolver::new(MatexOptions::new(KrylovKind::Rational)).run(&sys, &spec)?;
//! let reference = BackwardEuler::new(1e-13).run(&sys, &spec)?;
//! let (max_err, _avg) = matex.error_vs(&reference)?;
//! assert!(max_err < 1e-4);
//! # Ok(())
//! # }
//! ```

mod be;
mod cancel;
mod engine;
mod error;
mod faults;
mod fp_terms;
mod matex_solver;
mod reference;
mod result;
mod setup;
mod spec;
mod stats;
mod stiffness;
mod symbolic;
mod tr;
mod tr_adaptive;

pub use be::BackwardEuler;
pub use cancel::CancelToken;
pub use engine::{InputEval, Recorder, TransientEngine};
pub use error::CoreError;
pub use faults::{FaultHook, FaultKind, FaultPlan};
pub use fp_terms::IntervalTerms;
pub use matex_solver::{MatexOptions, MatexSolver};
pub use reference::{reference_solution, ReferenceMethod};
pub use result::TransientResult;
pub use setup::MatexSetup;
pub use spec::{ObserveSpec, TransientSpec};
pub use stats::SolveStats;
pub use stiffness::measure_stiffness;
pub use symbolic::MatexSymbolic;
pub use tr::Trapezoidal;
pub use tr_adaptive::TrapezoidalAdaptive;

// Re-export the Krylov variant selector: it is part of this crate's API.
pub use matex_krylov::{ExpmParams, KrylovKind};
// Re-export the what-if correction types consumed by `MatexSetup::correct`,
// so downstream crates (the serve engine) need no direct sparse dependency.
pub use matex_sparse::{SmwOptions, SmwRejection};
