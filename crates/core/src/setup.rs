//! Reusable solver setup: the split between *preparing* a MATEX run and
//! *running* it.
//!
//! Everything [`MatexSolver::run`](crate::MatexSolver) does before its
//! transient loop — factoring `G`, factoring the variant's `X1` matrix
//! (`C + γG` for R-MATEX, a regularized `C` for MEXP), and building the
//! level-scheduled substitution plans — depends only on the system
//! matrices and `(kind, γ)`, never on the source waveforms, the time
//! window, the source mask, or the tolerances. A [`MatexSetup`] captures
//! exactly that prefix as an immutable artifact:
//!
//! * a solver prepares one internally when none is injected (the
//!   historical behavior, bit for bit),
//! * a scenario engine prepares one per `(circuit values, γ)` and
//!   injects it into every job that shares them
//!   ([`MatexSolver::with_setup`](crate::MatexSolver::with_setup)), so
//!   repeated-structure jobs skip straight to the numeric march,
//! * a distributed run shares one across all of its nodes
//!   (`DistributedOptions::setup` in `matex-dist`) — the node matrices
//!   are identical, masking only selects input columns.
//!
//! Injection never changes the numerics: the factors (and therefore
//! every substitution of the run) are the same objects a fresh
//! preparation would produce.

use crate::{CoreError, MatexOptions, MatexSymbolic, SolveStats};
use matex_circuit::{regularize_c, MnaSystem, ValueDiff};
use matex_krylov::{shifted_system, KrylovKind};
use matex_sparse::{
    CsrMatrix, LuOptions, SmwOptions, SmwRejection, SmwUpdate, SolveSchedule, SparseLu,
};
use matex_sparse::{WireError, WireReader, WireWriter};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The immutable, shareable preparation of a MATEX run: factors of `G`
/// and the variant matrix plus (optionally) their substitution
/// schedules.
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{MatexOptions, MatexSetup, MatexSolver, TransientEngine, TransientSpec};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(4, 4).build()?;
/// let opts = MatexOptions::default();
/// let setup = Arc::new(MatexSetup::prepare(&sys, &opts, None, false)?);
/// // Two runs over different windows share one preparation; the
/// // waveforms are bitwise what a fresh solver produces.
/// let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
/// let fresh = MatexSolver::new(opts.clone()).run(&sys, &spec)?;
/// let reused = MatexSolver::new(opts).with_setup(setup).run(&sys, &spec)?;
/// assert_eq!(fresh.series(), reused.series());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MatexSetup {
    kind: KrylovKind,
    gamma: f64,
    regularize_eps: f64,
    dim: usize,
    /// `None` only for corrected setups, which delegate to `base`.
    lu_g: Option<SparseLu>,
    /// The variant's `X1` factorization; `None` for I-MATEX, which
    /// reuses `lu_g`, and for corrected setups.
    lu_x1: Option<SparseLu>,
    /// MEXP's (possibly regularized) effective `C`.
    #[allow(dead_code)]
    c_reg: Option<CsrMatrix>,
    /// R-MATEX's shifted system `C + γG`.
    #[allow(dead_code)]
    shifted: Option<CsrMatrix>,
    sched_g: Option<SolveSchedule>,
    sched_x1: Option<SolveSchedule>,
    /// The uncorrected setup this one wraps (what-if fast path): all
    /// factors and schedules come from here, with the SMW corrections
    /// below turning its solves into edited-system solves.
    base: Option<Arc<MatexSetup>>,
    /// Correction turning `base`'s `lu_g` solves into `G_new` solves.
    smw_g: Option<SmwUpdate>,
    /// Correction for the variant's `X1` solves (`C + γG` for R-MATEX,
    /// the regularized `C` for MEXP).
    smw_x1: Option<SmwUpdate>,
    /// Touched-row rank of the edit this setup corrects for (0 when
    /// uncorrected).
    whatif_rank: usize,
    factorizations: usize,
    refactorizations: usize,
    factor_time: Duration,
}

impl MatexSetup {
    /// Performs the run-independent preparation for `(sys, opts)`.
    ///
    /// With a shared `symbolic` analysis the factorizations become
    /// numeric replays (counted in [`MatexSetup::refactorizations`]).
    /// `with_schedules` additionally builds the level-scheduled
    /// substitution plans that pooled runs replay; a pooled run injected
    /// with a schedule-less setup builds them itself.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures ([`CoreError::Sparse`]).
    pub fn prepare(
        sys: &MnaSystem,
        opts: &MatexOptions,
        symbolic: Option<&MatexSymbolic>,
        with_schedules: bool,
    ) -> Result<MatexSetup, CoreError> {
        let t0 = Instant::now();
        let mut counters = SolveStats::default();
        let lu_g = match symbolic {
            Some(sym) => sym.refactor_g(sys.g(), &mut counters)?,
            None => {
                counters.factorizations += 1;
                SparseLu::factor(sys.g(), &LuOptions::default())?
            }
        };
        let mut c_reg = None;
        let mut shifted = None;
        let mut lu_x1 = None;
        match opts.kind {
            KrylovKind::Standard => {
                let c_eff = if sys.zero_c_rows().is_empty() {
                    sys.c().clone()
                } else {
                    regularize_c(sys, opts.regularize_eps).c
                };
                lu_x1 = Some(SparseLu::factor(&c_eff, &LuOptions::default())?);
                counters.factorizations += 1;
                c_reg = Some(c_eff);
            }
            KrylovKind::Inverted => {
                // X1 = G: reuse the DC factorization — zero extra cost.
            }
            KrylovKind::Rational => {
                let (sh, lu, reused) = shifted_system(
                    sys.c(),
                    sys.g(),
                    opts.gamma,
                    symbolic.and_then(|s| s.shifted()),
                    &LuOptions::default(),
                )?;
                lu_x1 = Some(lu);
                counters.factorizations += 1;
                counters.refactorizations += usize::from(reused);
                shifted = Some(sh);
            }
        }
        let sched_g = with_schedules.then(|| lu_g.solve_schedule());
        let sched_x1 = match (&lu_x1, with_schedules) {
            (Some(lu), true) => Some(lu.solve_schedule()),
            _ => None,
        };
        Ok(MatexSetup {
            kind: opts.kind,
            gamma: opts.gamma,
            regularize_eps: opts.regularize_eps,
            dim: sys.dim(),
            lu_g: Some(lu_g),
            lu_x1,
            c_reg,
            shifted,
            sched_g,
            sched_x1,
            base: None,
            smw_g: None,
            smw_x1: None,
            whatif_rank: 0,
            factorizations: counters.factorizations,
            refactorizations: counters.refactorizations,
            factor_time: t0.elapsed(),
        })
    }

    /// Wraps `base` with Sherman–Morrison–Woodbury corrections for the
    /// value edit `diff` (produced by
    /// [`MnaSystem::value_diff`](matex_circuit::MnaSystem::value_diff)
    /// between the edited system and the system `base` was prepared
    /// for). Every solve through the returned setup — DC, input terms,
    /// and the variant's Krylov operator — then produces
    /// edited-system solutions without any refactorization: the what-if
    /// fast path.
    ///
    /// Costs `O(rank)` substitution pairs against `base`'s cached
    /// factors plus one `rank × rank` dense factorization; evaluation
    /// order is fixed, so corrected solves are bitwise-deterministic
    /// across repeat runs and (via the pool-invariant base
    /// substitutions) thread counts.
    ///
    /// # Errors
    ///
    /// Returns the [`SmwRejection`] when the edit must be served by a
    /// full preparation instead: rank above [`SmwOptions::max_rank`] or
    /// an ill-conditioned capture matrix. Callers fall back to
    /// [`MatexSetup::prepare`], which is bitwise-identical to the
    /// never-corrected path.
    ///
    /// # Panics
    ///
    /// Panics if `base` is itself corrected or `diff`'s dimension
    /// disagrees with `base`.
    pub fn correct(
        base: Arc<MatexSetup>,
        diff: &ValueDiff,
        opts: &SmwOptions,
    ) -> Result<MatexSetup, SmwRejection> {
        assert!(
            !base.is_corrected(),
            "what-if corrections must wrap an uncorrected base setup"
        );
        assert_eq!(
            base.dim(),
            diff.dim(),
            "edit set dimension disagrees with the base setup"
        );
        let t0 = Instant::now();
        let rank = diff.rank();
        let smw_g = if diff.rank_g() > 0 {
            let (u, v) = diff.g_update();
            Some(SmwUpdate::build(base.lu_g(), &u, &v, opts)?)
        } else {
            None
        };
        let smw_x1 = match base.kind {
            KrylovKind::Inverted => None,
            KrylovKind::Rational => {
                let (u, v) = diff.shifted_update(base.gamma);
                if u.is_empty() {
                    None
                } else {
                    let lu = base.lu_x1().expect("rational base holds lu(C+γG)");
                    Some(SmwUpdate::build(lu, &u, &v, opts)?)
                }
            }
            KrylovKind::Standard => {
                if diff.rank_c() > 0 {
                    let (u, v) = diff.c_update();
                    let lu = base.lu_x1().expect("standard base holds lu(C)");
                    Some(SmwUpdate::build(lu, &u, &v, opts)?)
                } else {
                    None
                }
            }
        };
        Ok(MatexSetup {
            kind: base.kind,
            gamma: base.gamma,
            regularize_eps: base.regularize_eps,
            dim: base.dim,
            lu_g: None,
            lu_x1: None,
            c_reg: None,
            shifted: None,
            sched_g: None,
            sched_x1: None,
            base: Some(base),
            smw_g,
            smw_x1,
            whatif_rank: rank,
            factorizations: 0,
            refactorizations: 0,
            factor_time: t0.elapsed(),
        })
    }

    /// Verifies this setup matches a run's system and options. Values
    /// are the caller's contract (a scenario engine keys setups by the
    /// system's value fingerprint); the cheap invariants — dimension,
    /// variant, and γ — are checked here.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] on any mismatch.
    pub fn check(&self, sys: &MnaSystem, opts: &MatexOptions) -> Result<(), CoreError> {
        if self.dim != sys.dim() {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared for dim {} used on dim {}",
                self.dim,
                sys.dim()
            )));
        }
        if self.kind != opts.kind {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared for {:?} used with {:?}",
                self.kind, opts.kind
            )));
        }
        if self.kind == KrylovKind::Rational && self.gamma.to_bits() != opts.gamma.to_bits() {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared at γ={} used at γ={}",
                self.gamma, opts.gamma
            )));
        }
        if self.kind == KrylovKind::Standard
            && self.regularize_eps.to_bits() != opts.regularize_eps.to_bits()
        {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared with regularize_eps={} used with {}",
                self.regularize_eps, opts.regularize_eps
            )));
        }
        Ok(())
    }

    /// The variant this setup was prepared for.
    pub fn kind(&self) -> KrylovKind {
        self.kind
    }

    /// The γ this setup was prepared at (meaningful for R-MATEX).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// System dimension the setup was prepared for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `G` factorization (DC condition and input terms). For a
    /// corrected setup this is the **base** factorization — pair its
    /// solves with [`MatexSetup::smw_g`] (or use
    /// [`MatexSetup::solve_g`]) to get edited-system solutions.
    pub fn lu_g(&self) -> &SparseLu {
        match &self.base {
            Some(b) => b.lu_g(),
            None => self.lu_g.as_ref().expect("uncorrected setup holds lu_g"),
        }
    }

    /// The variant's `X1` factorization (`None` for I-MATEX); the base
    /// factorization for corrected setups, as with
    /// [`MatexSetup::lu_g`].
    pub fn lu_x1(&self) -> Option<&SparseLu> {
        match &self.base {
            Some(b) => b.lu_x1(),
            None => self.lu_x1.as_ref(),
        }
    }

    /// The pre-built substitution schedule for `lu_g`, if prepared.
    pub fn sched_g(&self) -> Option<&SolveSchedule> {
        match &self.base {
            Some(b) => b.sched_g(),
            None => self.sched_g.as_ref(),
        }
    }

    /// The pre-built substitution schedule for `lu_x1`, if prepared.
    pub fn sched_x1(&self) -> Option<&SolveSchedule> {
        match &self.base {
            Some(b) => b.sched_x1(),
            None => self.sched_x1.as_ref(),
        }
    }

    /// Whether this setup wraps a base with what-if corrections.
    pub fn is_corrected(&self) -> bool {
        self.base.is_some()
    }

    /// Touched-row rank of the edit this setup corrects for (0 when
    /// uncorrected).
    pub fn whatif_rank(&self) -> usize {
        self.whatif_rank
    }

    /// The SMW correction for `lu_g` solves, when present.
    pub fn smw_g(&self) -> Option<&SmwUpdate> {
        self.smw_g.as_ref()
    }

    /// The SMW correction for `lu_x1` solves, when present.
    pub fn smw_x1(&self) -> Option<&SmwUpdate> {
        self.smw_x1.as_ref()
    }

    /// Solves `G_eff x = b` — the (possibly corrected) solve backing
    /// the DC condition: base substitution pair plus the `smw_g`
    /// correction when present. Uncorrected setups get exactly
    /// `lu_g().solve(b)`, bit for bit.
    pub fn solve_g(&self, b: &[f64]) -> Vec<f64> {
        let mut x = self.lu_g().solve(b);
        if let Some(smw) = &self.smw_g {
            smw.correct_in_place(&mut x);
        }
        x
    }

    /// Factorizations the preparation performed (full or replay).
    pub fn factorizations(&self) -> usize {
        self.factorizations
    }

    /// Of those, numeric replays of a shared symbolic analysis.
    pub fn refactorizations(&self) -> usize {
        self.refactorizations
    }

    /// Wall time of the preparation.
    pub fn factor_time(&self) -> Duration {
        self.factor_time
    }

    /// Appends the setup's factors to `w` for the artifact store.
    ///
    /// Only *uncorrected* setups persist: a corrected (what-if) setup's
    /// waveforms approximate the edited system to ~1e-8 rather than
    /// bitwise, so persisting one would silently weaken the store's
    /// bitwise-restart guarantee.
    ///
    /// Schedules are not serialized — only presence flags. A decode
    /// rebuilds them with [`SparseLu::solve_schedule`], which is a pure
    /// function of the factors, so the rebuilt schedules drive the same
    /// substitutions bit for bit.
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] when the setup is corrected.
    pub fn wire_encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        if self.is_corrected() {
            return Err(WireError::Invalid(
                "corrected (what-if) setups are not persisted".into(),
            ));
        }
        w.u8(kind_tag(self.kind));
        w.f64(self.gamma);
        w.f64(self.regularize_eps);
        w.usize(self.dim);
        let lu_g = self.lu_g.as_ref().expect("uncorrected setup holds lu_g");
        lu_g.wire_encode(w);
        w.u8(self.lu_x1.is_some() as u8);
        if let Some(lu) = &self.lu_x1 {
            lu.wire_encode(w);
        }
        w.u8(self.sched_g.is_some() as u8);
        w.u8(self.sched_x1.is_some() as u8);
        Ok(())
    }

    /// Decodes a setup previously written by
    /// [`MatexSetup::wire_encode`].
    ///
    /// The decoded setup is uncorrected, reports zero factorizations
    /// (nothing was factored — that is the point of the store) and a
    /// zero preparation time; its factors and rebuilt schedules are
    /// bitwise the ones that were encoded.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or structurally invalid factors.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let kind = kind_from_tag(r.u8()?)?;
        let gamma = r.f64()?;
        let regularize_eps = r.f64()?;
        let dim = r.usize()?;
        let lu_g = SparseLu::wire_decode(r)?;
        let lu_x1 = match r.u8()? {
            0 => None,
            _ => Some(SparseLu::wire_decode(r)?),
        };
        let with_sched_g = r.u8()? != 0;
        let with_sched_x1 = r.u8()? != 0;
        let sched_g = with_sched_g.then(|| lu_g.solve_schedule());
        let sched_x1 = match (&lu_x1, with_sched_x1) {
            (Some(lu), true) => Some(lu.solve_schedule()),
            _ => None,
        };
        Ok(MatexSetup {
            kind,
            gamma,
            regularize_eps,
            dim,
            lu_g: Some(lu_g),
            lu_x1,
            c_reg: None,
            shifted: None,
            sched_g,
            sched_x1,
            base: None,
            smw_g: None,
            smw_x1: None,
            whatif_rank: 0,
            factorizations: 0,
            refactorizations: 0,
            factor_time: Duration::ZERO,
        })
    }
}

/// Stable wire tag for a Krylov variant.
fn kind_tag(kind: KrylovKind) -> u8 {
    match kind {
        KrylovKind::Standard => 0,
        KrylovKind::Inverted => 1,
        KrylovKind::Rational => 2,
    }
}

/// Inverse of [`kind_tag`].
fn kind_from_tag(tag: u8) -> Result<KrylovKind, WireError> {
    match tag {
        0 => Ok(KrylovKind::Standard),
        1 => Ok(KrylovKind::Inverted),
        2 => Ok(KrylovKind::Rational),
        t => Err(WireError::Invalid(format!("unknown variant tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::RcMeshBuilder;

    #[test]
    fn prepare_counts_and_checks() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let opts = MatexOptions::default();
        let setup = MatexSetup::prepare(&sys, &opts, None, true).unwrap();
        assert_eq!(setup.factorizations(), 2); // G and C + γG
        assert_eq!(setup.refactorizations(), 0);
        assert!(setup.lu_x1().is_some());
        assert!(setup.sched_g().is_some() && setup.sched_x1().is_some());
        assert!(setup.check(&sys, &opts).is_ok());
        // γ mismatch is rejected for the rational variant.
        assert!(setup.check(&sys, &opts.clone().gamma(2e-10)).is_err());
        let mut inv = opts.clone();
        inv.kind = KrylovKind::Inverted;
        assert!(setup.check(&sys, &inv).is_err());
        let other = RcMeshBuilder::new(5, 5).build().unwrap();
        assert!(setup.check(&other, &opts).is_err());
        // MEXP's effective C depends on regularize_eps: a setup prepared
        // at one ε must not be reused at another.
        let std_opts = MatexOptions::new(KrylovKind::Standard);
        let std_setup = MatexSetup::prepare(&sys, &std_opts, None, false).unwrap();
        assert!(std_setup.check(&sys, &std_opts).is_ok());
        let mut other_eps = std_opts.clone();
        other_eps.regularize_eps = 1e-6;
        assert!(std_setup.check(&sys, &other_eps).is_err());
        // γ is irrelevant off the rational variant.
        let mut other_gamma = std_opts;
        other_gamma.gamma = 9e-9;
        assert!(std_setup.check(&sys, &other_gamma).is_ok());
    }

    #[test]
    fn symbolic_turns_preparation_into_replays() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let opts = MatexOptions::default();
        let symbolic = MatexSymbolic::analyze(&sys, &opts).unwrap();
        let setup = MatexSetup::prepare(&sys, &opts, Some(&symbolic), false).unwrap();
        assert_eq!(setup.factorizations(), 2);
        assert_eq!(setup.refactorizations(), 2);
        assert!(setup.sched_g().is_none() && setup.sched_x1().is_none());
    }

    #[test]
    fn inverted_variant_shares_the_g_factor() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let opts = MatexOptions::new(KrylovKind::Inverted);
        let setup = MatexSetup::prepare(&sys, &opts, None, false).unwrap();
        assert_eq!(setup.factorizations(), 1);
        assert!(setup.lu_x1().is_none());
    }

    fn pdn_pair() -> (MnaSystem, MnaSystem) {
        let base = matex_circuit::PdnBuilder::new(6, 6)
            .num_loads(5)
            .seed(77)
            .build()
            .unwrap();
        let edited = base.with_cap_scaled(7, 3.0).unwrap();
        (base, edited)
    }

    #[test]
    fn corrected_setup_matches_full_refactor() {
        use crate::{MatexSolver, TransientEngine, TransientSpec};
        let (base_sys, edited) = pdn_pair();
        let spec = TransientSpec::new(0.0, 2e-9, 2e-11).unwrap();
        for kind in [
            KrylovKind::Rational,
            KrylovKind::Inverted,
            KrylovKind::Standard,
        ] {
            let opts = MatexOptions::new(kind);
            let base = Arc::new(MatexSetup::prepare(&base_sys, &opts, None, false).unwrap());
            let diff = edited.value_diff(&base_sys).expect("same pattern");
            assert!(diff.rank() > 0);
            let corrected =
                MatexSetup::correct(Arc::clone(&base), &diff, &SmwOptions::default()).unwrap();
            assert!(corrected.is_corrected());
            assert_eq!(corrected.whatif_rank(), diff.rank());
            assert_eq!(corrected.factorizations(), 0);
            let corrected = Arc::new(corrected);
            let fast = MatexSolver::new(opts.clone())
                .with_setup(Arc::clone(&corrected))
                .run(&edited, &spec)
                .unwrap();
            let slow = MatexSolver::new(opts.clone()).run(&edited, &spec).unwrap();
            let (max_dev, _) = fast.error_vs(&slow).unwrap();
            assert!(
                max_dev <= 1e-8,
                "{kind:?}: corrected run deviates by {max_dev:e}"
            );
            // Repeat runs through the same corrected setup are bitwise
            // identical (the fixed-order SMW evaluation).
            let again = MatexSolver::new(opts)
                .with_setup(corrected)
                .run(&edited, &spec)
                .unwrap();
            assert_eq!(fast.series(), again.series());
        }
    }

    #[test]
    fn corrected_solve_g_matches_edited_factorization() {
        let (base_sys, edited) = pdn_pair();
        // A pure-C edit leaves G untouched: solve_g must match the base
        // solve bit for bit (no smw_g built at all).
        let opts = MatexOptions::default();
        let base = Arc::new(MatexSetup::prepare(&base_sys, &opts, None, false).unwrap());
        let diff = edited.value_diff(&base_sys).unwrap();
        assert_eq!(diff.rank_g(), 0);
        let corrected =
            MatexSetup::correct(Arc::clone(&base), &diff, &SmwOptions::default()).unwrap();
        assert!(corrected.smw_g().is_none());
        let b: Vec<f64> = (0..base_sys.dim()).map(|i| (i % 7) as f64 - 3.0).collect();
        assert_eq!(corrected.solve_g(&b), base.solve_g(&b));
        // A G edit routes solve_g through the correction and agrees with
        // a from-scratch factorization of the edited G.
        let (r1, r2) = (
            base_sys
                .node_row(&matex_circuit::PdnBuilder::node_name(1, 1, 1))
                .unwrap(),
            base_sys
                .node_row(&matex_circuit::PdnBuilder::node_name(1, 2, 1))
                .unwrap(),
        );
        let g_edit = base_sys
            .with_conductance_delta(Some(r1), Some(r2), 0.4)
            .unwrap();
        let diff = g_edit.value_diff(&base_sys).unwrap();
        assert!(diff.rank_g() > 0);
        let corrected = MatexSetup::correct(base, &diff, &SmwOptions::default()).unwrap();
        assert!(corrected.smw_g().is_some());
        let exact = SparseLu::factor(g_edit.g(), &LuOptions::default())
            .unwrap()
            .solve(&b);
        for (a, e) in corrected.solve_g(&b).iter().zip(&exact) {
            assert!((a - e).abs() <= 1e-10 * e.abs().max(1.0));
        }
    }

    #[test]
    fn over_rank_edit_is_rejected_for_fallback() {
        let (base_sys, edited) = pdn_pair();
        let opts = MatexOptions::default();
        let base = Arc::new(MatexSetup::prepare(&base_sys, &opts, None, false).unwrap());
        let diff = edited.value_diff(&base_sys).unwrap();
        let tight = SmwOptions {
            max_rank: 0,
            ..SmwOptions::default()
        };
        match MatexSetup::correct(base, &diff, &tight) {
            Err(SmwRejection::RankExceeded { rank, max_rank }) => {
                assert_eq!(rank, diff.rank_c());
                assert_eq!(max_rank, 0);
            }
            other => panic!("expected rank rejection, got {other:?}"),
        }
    }
}
