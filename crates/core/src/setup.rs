//! Reusable solver setup: the split between *preparing* a MATEX run and
//! *running* it.
//!
//! Everything [`MatexSolver::run`](crate::MatexSolver) does before its
//! transient loop — factoring `G`, factoring the variant's `X1` matrix
//! (`C + γG` for R-MATEX, a regularized `C` for MEXP), and building the
//! level-scheduled substitution plans — depends only on the system
//! matrices and `(kind, γ)`, never on the source waveforms, the time
//! window, the source mask, or the tolerances. A [`MatexSetup`] captures
//! exactly that prefix as an immutable artifact:
//!
//! * a solver prepares one internally when none is injected (the
//!   historical behavior, bit for bit),
//! * a scenario engine prepares one per `(circuit values, γ)` and
//!   injects it into every job that shares them
//!   ([`MatexSolver::with_setup`](crate::MatexSolver::with_setup)), so
//!   repeated-structure jobs skip straight to the numeric march,
//! * a distributed run shares one across all of its nodes
//!   (`DistributedOptions::setup` in `matex-dist`) — the node matrices
//!   are identical, masking only selects input columns.
//!
//! Injection never changes the numerics: the factors (and therefore
//! every substitution of the run) are the same objects a fresh
//! preparation would produce.

use crate::{CoreError, MatexOptions, MatexSymbolic, SolveStats};
use matex_circuit::{regularize_c, MnaSystem};
use matex_krylov::{shifted_system, KrylovKind};
use matex_sparse::{CsrMatrix, LuOptions, SolveSchedule, SparseLu};
use std::time::{Duration, Instant};

/// The immutable, shareable preparation of a MATEX run: factors of `G`
/// and the variant matrix plus (optionally) their substitution
/// schedules.
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{MatexOptions, MatexSetup, MatexSolver, TransientEngine, TransientSpec};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(4, 4).build()?;
/// let opts = MatexOptions::default();
/// let setup = Arc::new(MatexSetup::prepare(&sys, &opts, None, false)?);
/// // Two runs over different windows share one preparation; the
/// // waveforms are bitwise what a fresh solver produces.
/// let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
/// let fresh = MatexSolver::new(opts.clone()).run(&sys, &spec)?;
/// let reused = MatexSolver::new(opts).with_setup(setup).run(&sys, &spec)?;
/// assert_eq!(fresh.series(), reused.series());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MatexSetup {
    kind: KrylovKind,
    gamma: f64,
    regularize_eps: f64,
    dim: usize,
    lu_g: SparseLu,
    /// The variant's `X1` factorization; `None` for I-MATEX, which
    /// reuses `lu_g`.
    lu_x1: Option<SparseLu>,
    /// MEXP's (possibly regularized) effective `C`.
    #[allow(dead_code)]
    c_reg: Option<CsrMatrix>,
    /// R-MATEX's shifted system `C + γG`.
    #[allow(dead_code)]
    shifted: Option<CsrMatrix>,
    sched_g: Option<SolveSchedule>,
    sched_x1: Option<SolveSchedule>,
    factorizations: usize,
    refactorizations: usize,
    factor_time: Duration,
}

impl MatexSetup {
    /// Performs the run-independent preparation for `(sys, opts)`.
    ///
    /// With a shared `symbolic` analysis the factorizations become
    /// numeric replays (counted in [`MatexSetup::refactorizations`]).
    /// `with_schedules` additionally builds the level-scheduled
    /// substitution plans that pooled runs replay; a pooled run injected
    /// with a schedule-less setup builds them itself.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures ([`CoreError::Sparse`]).
    pub fn prepare(
        sys: &MnaSystem,
        opts: &MatexOptions,
        symbolic: Option<&MatexSymbolic>,
        with_schedules: bool,
    ) -> Result<MatexSetup, CoreError> {
        let t0 = Instant::now();
        let mut counters = SolveStats::default();
        let lu_g = match symbolic {
            Some(sym) => sym.refactor_g(sys.g(), &mut counters)?,
            None => {
                counters.factorizations += 1;
                SparseLu::factor(sys.g(), &LuOptions::default())?
            }
        };
        let mut c_reg = None;
        let mut shifted = None;
        let mut lu_x1 = None;
        match opts.kind {
            KrylovKind::Standard => {
                let c_eff = if sys.zero_c_rows().is_empty() {
                    sys.c().clone()
                } else {
                    regularize_c(sys, opts.regularize_eps).c
                };
                lu_x1 = Some(SparseLu::factor(&c_eff, &LuOptions::default())?);
                counters.factorizations += 1;
                c_reg = Some(c_eff);
            }
            KrylovKind::Inverted => {
                // X1 = G: reuse the DC factorization — zero extra cost.
            }
            KrylovKind::Rational => {
                let (sh, lu, reused) = shifted_system(
                    sys.c(),
                    sys.g(),
                    opts.gamma,
                    symbolic.and_then(|s| s.shifted()),
                    &LuOptions::default(),
                )?;
                lu_x1 = Some(lu);
                counters.factorizations += 1;
                counters.refactorizations += usize::from(reused);
                shifted = Some(sh);
            }
        }
        let sched_g = with_schedules.then(|| lu_g.solve_schedule());
        let sched_x1 = match (&lu_x1, with_schedules) {
            (Some(lu), true) => Some(lu.solve_schedule()),
            _ => None,
        };
        Ok(MatexSetup {
            kind: opts.kind,
            gamma: opts.gamma,
            regularize_eps: opts.regularize_eps,
            dim: sys.dim(),
            lu_g,
            lu_x1,
            c_reg,
            shifted,
            sched_g,
            sched_x1,
            factorizations: counters.factorizations,
            refactorizations: counters.refactorizations,
            factor_time: t0.elapsed(),
        })
    }

    /// Verifies this setup matches a run's system and options. Values
    /// are the caller's contract (a scenario engine keys setups by the
    /// system's value fingerprint); the cheap invariants — dimension,
    /// variant, and γ — are checked here.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] on any mismatch.
    pub fn check(&self, sys: &MnaSystem, opts: &MatexOptions) -> Result<(), CoreError> {
        if self.dim != sys.dim() {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared for dim {} used on dim {}",
                self.dim,
                sys.dim()
            )));
        }
        if self.kind != opts.kind {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared for {:?} used with {:?}",
                self.kind, opts.kind
            )));
        }
        if self.kind == KrylovKind::Rational && self.gamma.to_bits() != opts.gamma.to_bits() {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared at γ={} used at γ={}",
                self.gamma, opts.gamma
            )));
        }
        if self.kind == KrylovKind::Standard
            && self.regularize_eps.to_bits() != opts.regularize_eps.to_bits()
        {
            return Err(CoreError::InvalidSpec(format!(
                "setup prepared with regularize_eps={} used with {}",
                self.regularize_eps, opts.regularize_eps
            )));
        }
        Ok(())
    }

    /// The variant this setup was prepared for.
    pub fn kind(&self) -> KrylovKind {
        self.kind
    }

    /// The γ this setup was prepared at (meaningful for R-MATEX).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// System dimension the setup was prepared for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `G` factorization (DC condition and input terms).
    pub fn lu_g(&self) -> &SparseLu {
        &self.lu_g
    }

    /// The variant's `X1` factorization (`None` for I-MATEX).
    pub fn lu_x1(&self) -> Option<&SparseLu> {
        self.lu_x1.as_ref()
    }

    /// The pre-built substitution schedule for `lu_g`, if prepared.
    pub fn sched_g(&self) -> Option<&SolveSchedule> {
        self.sched_g.as_ref()
    }

    /// The pre-built substitution schedule for `lu_x1`, if prepared.
    pub fn sched_x1(&self) -> Option<&SolveSchedule> {
        self.sched_x1.as_ref()
    }

    /// Factorizations the preparation performed (full or replay).
    pub fn factorizations(&self) -> usize {
        self.factorizations
    }

    /// Of those, numeric replays of a shared symbolic analysis.
    pub fn refactorizations(&self) -> usize {
        self.refactorizations
    }

    /// Wall time of the preparation.
    pub fn factor_time(&self) -> Duration {
        self.factor_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::RcMeshBuilder;

    #[test]
    fn prepare_counts_and_checks() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let opts = MatexOptions::default();
        let setup = MatexSetup::prepare(&sys, &opts, None, true).unwrap();
        assert_eq!(setup.factorizations(), 2); // G and C + γG
        assert_eq!(setup.refactorizations(), 0);
        assert!(setup.lu_x1().is_some());
        assert!(setup.sched_g().is_some() && setup.sched_x1().is_some());
        assert!(setup.check(&sys, &opts).is_ok());
        // γ mismatch is rejected for the rational variant.
        assert!(setup.check(&sys, &opts.clone().gamma(2e-10)).is_err());
        let mut inv = opts.clone();
        inv.kind = KrylovKind::Inverted;
        assert!(setup.check(&sys, &inv).is_err());
        let other = RcMeshBuilder::new(5, 5).build().unwrap();
        assert!(setup.check(&other, &opts).is_err());
        // MEXP's effective C depends on regularize_eps: a setup prepared
        // at one ε must not be reused at another.
        let std_opts = MatexOptions::new(KrylovKind::Standard);
        let std_setup = MatexSetup::prepare(&sys, &std_opts, None, false).unwrap();
        assert!(std_setup.check(&sys, &std_opts).is_ok());
        let mut other_eps = std_opts.clone();
        other_eps.regularize_eps = 1e-6;
        assert!(std_setup.check(&sys, &other_eps).is_err());
        // γ is irrelevant off the rational variant.
        let mut other_gamma = std_opts;
        other_gamma.gamma = 9e-9;
        assert!(std_setup.check(&sys, &other_gamma).is_ok());
    }

    #[test]
    fn symbolic_turns_preparation_into_replays() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let opts = MatexOptions::default();
        let symbolic = MatexSymbolic::analyze(&sys, &opts).unwrap();
        let setup = MatexSetup::prepare(&sys, &opts, Some(&symbolic), false).unwrap();
        assert_eq!(setup.factorizations(), 2);
        assert_eq!(setup.refactorizations(), 2);
        assert!(setup.sched_g().is_none() && setup.sched_x1().is_none());
    }

    #[test]
    fn inverted_variant_shares_the_g_factor() {
        let sys = RcMeshBuilder::new(4, 4).build().unwrap();
        let opts = MatexOptions::new(KrylovKind::Inverted);
        let setup = MatexSetup::prepare(&sys, &opts, None, false).unwrap();
        assert_eq!(setup.factorizations(), 1);
        assert!(setup.lu_x1().is_none());
    }
}
