//! Transient analysis specification.

use crate::CoreError;

/// Which unknowns a transient run records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ObserveSpec {
    /// Record every unknown (nodes and branch currents). Fine for small
    /// systems; memory-heavy for full grids.
    #[default]
    All,
    /// Record only the listed state rows.
    Rows(Vec<usize>),
}

/// A transient-analysis request: the window `[t_start, t_stop]` and the
/// output sampling step.
///
/// All engines emit their solution *on the sample grid* (MATEX evaluates
/// there directly via Krylov reuse; fixed-step engines land on or
/// interpolate onto it), so results from different engines are directly
/// comparable.
///
/// # Example
///
/// ```
/// use matex_core::TransientSpec;
///
/// # fn main() -> Result<(), matex_core::CoreError> {
/// let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
/// assert_eq!(spec.sample_times().len(), 101);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSpec {
    t_start: f64,
    t_stop: f64,
    dt_out: f64,
    /// Which rows to record.
    pub observe: ObserveSpec,
}

impl TransientSpec {
    /// Creates a spec for `[t_start, t_stop]` sampled every `dt_out`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] when the window is empty, the
    /// sample step is non-positive, any value is non-finite, or the grid
    /// would exceed 10⁸ points.
    pub fn new(t_start: f64, t_stop: f64, dt_out: f64) -> Result<Self, CoreError> {
        if !t_start.is_finite() || !t_stop.is_finite() || !dt_out.is_finite() {
            return Err(CoreError::InvalidSpec("times must be finite".into()));
        }
        if t_stop <= t_start {
            return Err(CoreError::InvalidSpec(format!(
                "t_stop ({t_stop}) must exceed t_start ({t_start})"
            )));
        }
        if dt_out <= 0.0 {
            return Err(CoreError::InvalidSpec("dt_out must be positive".into()));
        }
        let n = (t_stop - t_start) / dt_out;
        if n > 1e8 {
            return Err(CoreError::InvalidSpec(format!(
                "sample grid of {n:.1e} points is too large"
            )));
        }
        Ok(TransientSpec {
            t_start,
            t_stop,
            dt_out,
            observe: ObserveSpec::All,
        })
    }

    /// Restricts recording to the given state rows (builder style).
    pub fn observing(mut self, rows: Vec<usize>) -> Self {
        self.observe = ObserveSpec::Rows(rows);
        self
    }

    /// Window start, seconds.
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// Window end, seconds.
    pub fn t_stop(&self) -> f64 {
        self.t_stop
    }

    /// Output sampling step, seconds.
    pub fn dt_out(&self) -> f64 {
        self.dt_out
    }

    /// The output sample grid (includes both endpoints; the last interval
    /// may be short).
    pub fn sample_times(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut k = 0usize;
        loop {
            let t = self.t_start + k as f64 * self.dt_out;
            if t >= self.t_stop - 1e-12 * self.dt_out {
                break;
            }
            out.push(t);
            k += 1;
        }
        out.push(self.t_stop);
        out
    }

    /// Resolves the observation row list for a system dimension.
    pub fn observed_rows(&self, dim: usize) -> Vec<usize> {
        match &self.observe {
            ObserveSpec::All => (0..dim).collect(),
            ObserveSpec::Rows(rows) => rows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_includes_endpoints() {
        let s = TransientSpec::new(0.0, 1.0, 0.25).unwrap();
        assert_eq!(s.sample_times(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn ragged_last_interval() {
        let s = TransientSpec::new(0.0, 0.9, 0.4).unwrap();
        let t = s.sample_times();
        assert_eq!(t.len(), 4);
        assert_eq!(*t.last().unwrap(), 0.9);
    }

    #[test]
    fn validation() {
        assert!(TransientSpec::new(0.0, 0.0, 0.1).is_err());
        assert!(TransientSpec::new(0.0, 1.0, 0.0).is_err());
        assert!(TransientSpec::new(0.0, f64::NAN, 0.1).is_err());
        assert!(TransientSpec::new(0.0, 1.0, 1e-10).is_err()); // too many points
    }

    #[test]
    fn observed_rows_modes() {
        let s = TransientSpec::new(0.0, 1.0, 0.5).unwrap();
        assert_eq!(s.observed_rows(3), vec![0, 1, 2]);
        let s = s.observing(vec![7, 2]);
        assert_eq!(s.observed_rows(100), vec![7, 2]);
    }
}
