//! LTE-controlled adaptive trapezoidal method.
//!
//! The paper's Table 2 baseline ("TR(adpt)"): trapezoidal stepping with a
//! local-truncation-error controller. The crucial cost property (Sec. 1,
//! Sec. 3) is that **every accepted step-size change re-factorizes
//! `(C/h + G/2)`** — the expense MATEX avoids entirely by reusing one
//! factorization for arbitrary step sizes.
//!
//! Since `C/h + G/2` keeps one nonzero pattern for every `h`, those
//! repeated factorizations are two-phase: the sparsity analysis
//! ([`SymbolicLu`]) runs once at the first step and every later step
//! change replays only the numeric updates (counted in
//! `stats.refactorizations`). The factorization *count* — the baseline's
//! cost signature in Table 2 — is unchanged; each one just costs less.
//!
//! LTE estimation follows standard circuit-simulation practice (Najm,
//! *Circuit Simulation*, 2010): the trapezoidal LTE is `−h³ x‴/12`, with
//! `x‴` estimated from third divided differences of the recent solution
//! history. The controller also lands exactly on input transition spots —
//! skipping a pulse edge would silently corrupt PWL inputs.

use crate::engine::{InputEval, Recorder, TransientEngine};
use crate::{CoreError, SolveStats, TransientResult, TransientSpec};
use matex_circuit::MnaSystem;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu, SymbolicLu};
use matex_waveform::SpotSet;
use std::time::Instant;

/// Adaptive-step trapezoidal engine with LTE control.
#[derive(Debug, Clone)]
pub struct TrapezoidalAdaptive {
    /// Absolute LTE tolerance (volts).
    pub atol: f64,
    /// Relative LTE tolerance.
    pub rtol: f64,
    /// Initial step size, seconds.
    pub h_init: f64,
    /// Smallest allowed step.
    pub h_min: f64,
    /// Largest allowed step.
    pub h_max: f64,
    mask: Option<Vec<usize>>,
}

impl TrapezoidalAdaptive {
    /// Creates the engine with the given tolerances and an initial step.
    ///
    /// # Panics
    ///
    /// Panics when the step bounds are inconsistent or non-positive.
    pub fn new(atol: f64, h_init: f64) -> Self {
        assert!(atol > 0.0 && atol.is_finite(), "atol must be positive");
        assert!(
            h_init > 0.0 && h_init.is_finite(),
            "h_init must be positive"
        );
        TrapezoidalAdaptive {
            atol,
            rtol: 1e-3,
            h_init,
            h_min: h_init * 1e-6,
            h_max: h_init * 1e4,
            mask: None,
        }
    }

    /// Restricts the active sources (superposition subtask mode).
    pub fn with_source_mask(mut self, members: Vec<usize>) -> Self {
        self.mask = Some(members);
        self
    }

    /// Weighted LTE norm against tolerance: ≤ 1 means acceptable.
    fn lte_norm(&self, lte: &[f64], x: &[f64]) -> f64 {
        let mut worst = 0.0_f64;
        for (e, v) in lte.iter().zip(x) {
            worst = worst.max(e.abs() / (self.atol + self.rtol * v.abs()));
        }
        worst
    }
}

impl TransientEngine for TrapezoidalAdaptive {
    fn run(&self, sys: &MnaSystem, spec: &TransientSpec) -> Result<TransientResult, CoreError> {
        let mut stats = SolveStats::default();
        let input = match &self.mask {
            None => InputEval::new(sys),
            Some(m) => InputEval::masked(sys, m),
        };
        // Transition spots of the active sources: mandatory landing points.
        let spots: Vec<SpotSet> = input
            .active_columns()
            .iter()
            .map(|&c| {
                SpotSet::from_times(sys.sources()[c].waveform.transition_spots(spec.t_stop()))
            })
            .collect();
        let breakpoints = SpotSet::union(&spots).clip(spec.t_start(), spec.t_stop());

        let t0 = Instant::now();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default())?;
        let mut x = lu_g.solve(&input.bu_at(spec.t_start()));
        stats.substitution_pairs += 1;
        stats.factorizations += 1;
        stats.dc_time = t0.elapsed();

        let tt = Instant::now();
        let mut rec = Recorder::new(spec, sys.dim());
        rec.record_step(spec.t_start(), &x, spec.t_start(), &x);

        // Current factorization state. The LHS pattern is h-independent,
        // so one symbolic analysis serves every step-size change.
        let mut h_fact = -1.0_f64; // step the factors were built for
        let mut lu: Option<SparseLu> = None;
        let mut symbolic: Option<SymbolicLu> = None;
        let mut rhs_mat: Option<CsrMatrix> = None;
        let mut factor_time = std::time::Duration::ZERO;

        // Solution history for divided differences: (t, x).
        let mut history: Vec<(f64, Vec<f64>)> = vec![(spec.t_start(), x.clone())];

        let mut t = spec.t_start();
        let mut h = self.h_init;
        let mut out = vec![0.0; sys.dim()];
        let mut work = vec![0.0; sys.dim()];
        let mut rhs = vec![0.0; sys.dim()];
        let mut rejects_in_a_row = 0usize;
        while t < spec.t_stop() - 1e-15 * spec.t_stop().abs().max(1e-30) {
            // Clamp to breakpoints and the window end.
            let mut h_step = h.clamp(self.h_min, self.h_max);
            if let Some(bp) = breakpoints.next_after(t) {
                if bp - t > 1e-18 {
                    h_step = h_step.min(bp - t);
                }
            }
            h_step = h_step.min(spec.t_stop() - t);
            let tn = t + h_step;

            // (Re)factor when the step changed materially: symbolic
            // analysis on the first step, numeric replay thereafter.
            if lu.is_none() || (h_step - h_fact).abs() > 1e-9 * h_fact {
                let tf = Instant::now();
                let lhs = CsrMatrix::linear_combination(1.0 / h_step, sys.c(), 0.5, sys.g())?;
                let rm = CsrMatrix::linear_combination(1.0 / h_step, sys.c(), -0.5, sys.g())?;
                lu = Some(match &symbolic {
                    Some(sym) => match sym.try_refactor(&lhs)? {
                        Some(f) => {
                            stats.refactorizations += 1;
                            f
                        }
                        None => SparseLu::factor(&lhs, &LuOptions::default())?,
                    },
                    None => {
                        // First step: the analysis computes the numeric
                        // factors anyway — keep them instead of paying
                        // a second pass.
                        let (sym, f) =
                            SymbolicLu::analyze_with_factor(&lhs, &LuOptions::default())?;
                        symbolic = Some(sym);
                        f
                    }
                });
                rhs_mat = Some(rm);
                h_fact = h_step;
                stats.factorizations += 1;
                factor_time += tf.elapsed();
            }
            let lu_ref = lu.as_ref().expect("factorization present");
            let rhs_ref = rhs_mat.as_ref().expect("rhs matrix present");

            // Trapezoidal step.
            rhs_ref.matvec_into(&x, &mut rhs);
            let bu_now = input.bu_at(t);
            let bu_next = input.bu_at(tn);
            for i in 0..rhs.len() {
                rhs[i] += 0.5 * (bu_now[i] + bu_next[i]);
            }
            lu_ref.solve_into(&rhs, &mut out, &mut work);
            stats.substitution_pairs += 1;

            // LTE via third divided difference over the last 4 points.
            let accept = if history.len() >= 3 {
                let mut pts: Vec<(f64, &[f64])> = history
                    .iter()
                    .rev()
                    .take(3)
                    .map(|(tp, xp)| (*tp, xp.as_slice()))
                    .collect();
                pts.reverse();
                pts.push((tn, &out));
                let lte = tr_lte(&pts, h_step);
                let norm = self.lte_norm(&lte, &out);
                if norm <= 1.0 {
                    // Grow the step gently; quantized to avoid refactoring
                    // on every step.
                    let grow = (1.0 / norm.max(1e-4)).powf(1.0 / 3.0).min(2.0) * 0.9;
                    if grow > 1.25 {
                        h = (h_step * grow).clamp(self.h_min, self.h_max);
                    } else {
                        h = h_step;
                    }
                    true
                } else {
                    let shrink = (1.0 / norm).powf(1.0 / 3.0).max(0.1) * 0.9;
                    h = (h_step * shrink).clamp(self.h_min, self.h_max);
                    false
                }
            } else {
                true // bootstrap: accept the first few small steps
            };

            if accept {
                rejects_in_a_row = 0;
                rec.record_step(t, &x, tn, &out);
                x.copy_from_slice(&out);
                t = tn;
                history.push((t, x.clone()));
                if history.len() > 4 {
                    history.remove(0);
                }
                stats.steps += 1;
            } else {
                stats.rejected_steps += 1;
                rejects_in_a_row += 1;
                if h_step <= self.h_min * (1.0 + 1e-9) || rejects_in_a_row > 40 {
                    return Err(CoreError::StepUnderflow { at: t, h: h_step });
                }
            }
        }
        stats.factor_time = factor_time;
        stats.transient_time = tt.elapsed().saturating_sub(factor_time);
        let (times, rows, series) = rec.finish();
        Ok(TransientResult::new(
            self.name(),
            times,
            rows,
            series,
            x,
            stats,
        ))
    }

    fn name(&self) -> String {
        format!("TR-adaptive(atol={:.1e})", self.atol)
    }
}

/// Trapezoidal LTE estimate `|h³ x‴ / 12|` per component, with `x‴` from
/// the third divided difference of four `(t, x)` points (times strictly
/// increasing).
fn tr_lte(pts: &[(f64, &[f64])], h: f64) -> Vec<f64> {
    assert_eq!(pts.len(), 4, "lte needs 4 history points");
    let n = pts[0].1.len();
    let mut lte = vec![0.0; n];
    for i in 0..n {
        // Divided differences on component i.
        let mut dd: Vec<f64> = pts.iter().map(|(_, x)| x[i]).collect();
        for level in 1..4 {
            for k in 0..(4 - level) {
                let dt = pts[k + level].0 - pts[k].0;
                dd[k] = (dd[k + 1] - dd[k]) / dt;
            }
        }
        // x''' ≈ 6 · dd3  →  LTE ≈ h³ |x‴| / 12 = h³ |dd3| / 2.
        lte[i] = 0.5 * h.powi(3) * dd[0].abs();
    }
    lte
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackwardEuler, Trapezoidal};
    use matex_circuit::Netlist;
    use matex_waveform::{Pulse, Waveform};

    fn pulsed_rc() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn adaptive_matches_reference() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let adaptive = TrapezoidalAdaptive::new(1e-5, 1e-12)
            .run(&sys, &spec)
            .unwrap();
        let reference = BackwardEuler::new(2e-13).run(&sys, &spec).unwrap();
        let (max_err, _) = adaptive.error_vs(&reference).unwrap();
        assert!(max_err < 5e-3, "adaptive TR error too large: {max_err}");
    }

    #[test]
    fn adaptive_takes_fewer_steps_than_fixed_fine() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let adaptive = TrapezoidalAdaptive::new(1e-4, 1e-12)
            .run(&sys, &spec)
            .unwrap();
        let fixed = Trapezoidal::new(1e-12).run(&sys, &spec).unwrap();
        assert!(
            adaptive.stats.steps < fixed.stats.steps,
            "adaptive used {} steps, fixed {}",
            adaptive.stats.steps,
            fixed.stats.steps
        );
    }

    #[test]
    fn adaptive_refactorizes_on_step_changes() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let r = TrapezoidalAdaptive::new(1e-5, 1e-12)
            .run(&sys, &spec)
            .unwrap();
        // The cost signature of adaptive TR: many factorizations.
        assert!(
            r.stats.factorizations > 3,
            "expected several refactorizations, got {}",
            r.stats.factorizations
        );
        // All step-size factorizations except the DC factor of G and
        // the first LHS build (which doubles as the symbolic analysis)
        // replay that analysis: the LHS pattern never changes and the
        // diagonally-dominant pivots survive every step-size change.
        assert_eq!(
            r.stats.refactorizations,
            r.stats.factorizations - 2,
            "step-size refactorizations should all take the two-phase fast path"
        );
    }

    #[test]
    fn lands_on_pulse_edges() {
        // A very short pulse between otherwise quiet spans must not be
        // skipped even when the controller has grown the step.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.0, 5e-3, 5e-10, 1e-10, 1e-10, 1e-10).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1.5e-9, 1e-11).unwrap();
        let r = TrapezoidalAdaptive::new(1e-5, 1e-12)
            .run(&sys, &spec)
            .unwrap();
        // Peak voltage (~5 V on 1 kΩ) must be visible in the output.
        let peak = r
            .waveform(0)
            .unwrap()
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v));
        assert!(peak > 3.0, "pulse was skipped: peak = {peak}");
    }

    #[test]
    fn lte_of_cubic_is_detected() {
        // x(t) = t³ has constant x''' = 6: LTE = h³/2 · 6/6 ... dd3 = 1.
        let ts = [0.0, 1.0, 2.0, 3.0];
        let xs: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t * t * t]).collect();
        let pts: Vec<(f64, &[f64])> = ts
            .iter()
            .zip(&xs)
            .map(|(&t, x)| (t, x.as_slice()))
            .collect();
        let lte = tr_lte(&pts, 1.0);
        // dd3 of t³ = 1, so LTE = 0.5.
        assert!((lte[0] - 0.5).abs() < 1e-12);
    }
}
