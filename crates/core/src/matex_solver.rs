//! The MATEX circuit solver (paper Alg. 2).
//!
//! One engine covers all three variants (MEXP / I-MATEX / R-MATEX): after
//! a single factorization of the variant's `X1` matrix (plus `G` for the
//! input terms), the solver marches over the evaluation grid:
//!
//! * at a **local transition spot** (LTS) it generates a fresh Krylov
//!   subspace from `v = x(t) + F(t)`,
//! * at every other point (snapshots + output samples) it *reuses* the
//!   most recent subspace, paying only a small `e^{h·H_m}` evaluation —
//!   no substitutions, no refactorization,
//! * when the posterior error estimate rejects a reuse distance, it
//!   inserts pseudo-anchors (sub-steps) and rebuilds — the adaptive
//!   stepping of Alg. 2, still with the original factorization.
//!
//! In distributed mode ([`MatexSolver::with_source_mask`] +
//! [`MatexSolver::with_lts`]) the solver becomes one slave node of the
//! paper's Fig. 4: it simulates only its source group but evaluates on the
//! shared grid so results superpose.

use crate::engine::{InputEval, Recorder, TransientEngine};
use crate::fp_terms::IntervalTerms;
use crate::{
    CancelToken, CoreError, FaultHook, FaultKind, MatexSetup, MatexSymbolic, SolveStats,
    TransientResult, TransientSpec,
};
use matex_circuit::MnaSystem;
use matex_dense::norm2;
use matex_krylov::{
    build_basis_multi, ExpmParams, InvertedOp, KrylovBasis, KrylovError, KrylovKind, KrylovOp,
    ParApply, RationalOp, SnapshotEvaluator, StandardOp,
};
use matex_par::ParPool;
use matex_sparse::SolveSchedule;
use matex_waveform::SpotSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for the MATEX solver.
#[derive(Debug, Clone)]
pub struct MatexOptions {
    /// Krylov variant (default: rational / R-MATEX).
    pub kind: KrylovKind,
    /// Shift parameter γ for the rational variant. The paper sets it
    /// "around the order of the time steps used" — 1e-10 s for the IBM
    /// grids (Sec. 4.3) — and shows low sensitivity.
    pub gamma: f64,
    /// Krylov construction parameters (tolerance, m bounds, reorth).
    pub expm: ExpmParams,
    /// Relative ε for regularizing a singular `C` (standard variant
    /// only; see Sec. 3.3.3 — the other variants never regularize).
    /// Too small an ε creates parasitic modes fast enough to overflow
    /// the projected exponential; the default (1e-3 · max|C|) keeps the
    /// parasitic time constants physically invisible yet numerically
    /// benign.
    pub regularize_eps: f64,
    /// Maximum sub-step insertions per evaluation before accepting the
    /// best-effort value.
    pub max_substeps: usize,
    /// Fault-injection hook consulted at `"core.solver.run"` on entry to
    /// each run. Disarmed by default: production runs pay one branch.
    pub faults: FaultHook,
    /// Observability handle: spans and histograms for the run's phases
    /// (factor, DC, Arnoldi, expm, combine — the paper's `T_H`/`T_e`
    /// split). Disabled by default: every event is one branch, zero
    /// allocations, and the waveforms are bitwise-unchanged either way
    /// (instrumentation only reads clocks the solver already reads).
    pub obs: matex_obs::Obs,
}

impl MatexOptions {
    /// Defaults for the given variant. MEXP gets a larger `m_max` budget
    /// (it genuinely needs hundreds of vectors on stiff circuits —
    /// Table 1).
    pub fn new(kind: KrylovKind) -> Self {
        let m_max = match kind {
            KrylovKind::Standard => 300,
            _ => 100,
        };
        MatexOptions {
            kind,
            gamma: 1e-10,
            expm: ExpmParams {
                tol: 1e-6,
                m_min: 2,
                m_max,
                reorth: true,
            },
            regularize_eps: 1e-3,
            max_substeps: 30,
            faults: FaultHook::default(),
            obs: matex_obs::Obs::disabled(),
        }
    }

    /// Sets the Krylov tolerance (builder style).
    pub fn tol(mut self, tol: f64) -> Self {
        self.expm.tol = tol;
        self
    }

    /// Sets γ (builder style).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }
}

impl Default for MatexOptions {
    fn default() -> Self {
        MatexOptions::new(KrylovKind::Rational)
    }
}

/// The MATEX transient engine (Alg. 2).
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(4, 4).build()?;
/// let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
/// let solver = MatexSolver::new(MatexOptions::new(KrylovKind::Rational));
/// let result = solver.run(&sys, &spec)?;
/// // One factorization of (C + γG), one of G — never refactored.
/// assert!(result.stats.factorizations <= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MatexSolver {
    opts: MatexOptions,
    mask: Option<Vec<usize>>,
    lts_override: Option<SpotSet>,
    symbolic: Option<Arc<MatexSymbolic>>,
    setup: Option<Arc<MatexSetup>>,
    dc: Option<Arc<Vec<f64>>>,
    pool: Option<Arc<ParPool>>,
    cancel: Option<CancelToken>,
}

impl MatexSolver {
    /// Creates a solver with the given options.
    pub fn new(opts: MatexOptions) -> Self {
        MatexSolver {
            opts,
            mask: None,
            lts_override: None,
            symbolic: None,
            setup: None,
            dc: None,
            pool: None,
            cancel: None,
        }
    }

    /// Restricts the active sources to the listed `B` columns
    /// (superposition subtask mode).
    pub fn with_source_mask(mut self, members: Vec<usize>) -> Self {
        self.mask = Some(members);
        self
    }

    /// Overrides the derived local transition spots (distributed mode:
    /// the scheduler hands each node its group's LTS).
    pub fn with_lts(mut self, lts: SpotSet) -> Self {
        self.lts_override = Some(lts);
        self
    }

    /// Reuses a shared symbolic analysis ([`MatexSymbolic::analyze`])
    /// for this run's factorizations: `G` and — on the rational variant
    /// — `C + γG` become cheap numeric replays (counted in
    /// `stats.refactorizations`) instead of full factorizations. The
    /// numerics are bitwise-unchanged: a replay produces the same
    /// factors a full factorization would, and degraded pivots fall
    /// back transparently.
    pub fn with_symbolic(mut self, symbolic: Arc<MatexSymbolic>) -> Self {
        self.symbolic = Some(symbolic);
        self
    }

    /// Injects a shared, pre-built [`MatexSetup`]: the run skips its own
    /// factorization phase entirely and marches straight from the
    /// injected factors. The setup must match the run's system and
    /// `(kind, γ)` ([`MatexSetup::check`]); with a matching setup the
    /// waveforms are bitwise what an un-injected run produces, since the
    /// factors are the same objects a fresh preparation computes.
    ///
    /// The run's `stats` report the setup's (amortized) factorization
    /// counters, so accounting invariants hold whether or not the work
    /// was shared.
    pub fn with_setup(mut self, setup: Arc<MatexSetup>) -> Self {
        self.setup = Some(setup);
        self
    }

    /// Injects a cached DC operating point, skipping the run's initial
    /// `G x₀ = B u(t_start)` solve. The caller asserts the vector is
    /// exactly that solve's solution for this run's system, sources, and
    /// start time (a scenario engine keys DC solutions by the system's
    /// value and source fingerprints).
    pub fn with_dc(mut self, x0: Arc<Vec<f64>>) -> Self {
        self.dc = Some(x0);
        self
    }

    /// Runs this solver's intra-node kernels — the Krylov phase's
    /// mat-vecs, forward/backward substitutions, and Gram–Schmidt
    /// orthogonalization — on the given pool. After each factorization
    /// the solver builds the level-scheduled substitution plan once and
    /// reuses it for every solve of the run.
    ///
    /// Results are **bitwise-invariant in the pool width** (a one-thread
    /// pool is the reference; see `matex_par`'s determinism contract).
    /// Without a pool the historical serial code paths run unchanged.
    pub fn with_parallelism(mut self, pool: Arc<ParPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Makes the run observe a cooperative [`CancelToken`]: the march
    /// polls it between transient steps and returns
    /// [`CoreError::Cancelled`] — abandoning the remaining eval grid —
    /// within one step boundary of the token tripping. Work completed
    /// before the trip (factorizations, the DC solve, accepted points)
    /// is simply dropped; no shared or cached artifact is left
    /// half-written, because the poll sites never interrupt a
    /// factorization or a cache store.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured options.
    pub fn options(&self) -> &MatexOptions {
        &self.opts
    }
}

/// Owns whichever matrices the variant needs, so the operator can borrow.
enum OpHolder<'a> {
    Std(StandardOp<'a>),
    Inv(InvertedOp<'a>),
    Rat(RationalOp<'a>),
}

impl OpHolder<'_> {
    fn as_op(&self) -> &dyn KrylovOp {
        match self {
            OpHolder::Std(o) => o,
            OpHolder::Inv(o) => o,
            OpHolder::Rat(o) => o,
        }
    }
}

impl TransientEngine for MatexSolver {
    fn run(&self, sys: &MnaSystem, spec: &TransientSpec) -> Result<TransientResult, CoreError> {
        // Injected faults fire before any work so a retried run replays
        // the identical computation from scratch. `Error` takes the
        // solver's natural numeric-breakdown exit (`NotFinite`);
        // `Panic` unwinds to exercise supervision layers above.
        match self.opts.faults.check("core.solver.run") {
            Some(FaultKind::Panic) => panic!("injected fault: core.solver.run"),
            Some(FaultKind::Error) => {
                return Err(CoreError::Krylov(matex_krylov::KrylovError::Dense(
                    matex_dense::DenseError::NotFinite,
                )))
            }
            None => {}
        }
        let mut stats = SolveStats::default();
        let input = match &self.mask {
            None => InputEval::new(sys),
            Some(m) => InputEval::masked(sys, m),
        };
        let t_start = spec.t_start();
        let t_stop = spec.t_stop();

        // Local transition spots of the active sources.
        let lts = match &self.lts_override {
            Some(s) => s.clip(t_start, t_stop),
            None => {
                let sets: Vec<SpotSet> = input
                    .active_columns()
                    .iter()
                    .map(|&c| {
                        SpotSet::from_times(sys.sources()[c].waveform.transition_spots(t_stop))
                    })
                    .collect();
                SpotSet::union(&sets).clip(t_start, t_stop)
            }
        };

        // --- Preparation: factors of G and X1 plus their substitution
        // schedules. Either injected ([`MatexSolver::with_setup`] — the
        // scenario-cache fast path) or prepared here, exactly as every
        // run historically did. The factors are identical either way, so
        // the waveform is independent of where the setup came from.
        let prepared_storage;
        let setup: &MatexSetup = match &self.setup {
            Some(shared) => {
                shared.check(sys, &self.opts)?;
                shared.as_ref()
            }
            None => {
                let _sp = self.opts.obs.span("solver.factor");
                prepared_storage = MatexSetup::prepare(
                    sys,
                    &self.opts,
                    self.symbolic.as_deref(),
                    self.pool.is_some(),
                )?;
                &prepared_storage
            }
        };
        stats.factorizations += setup.factorizations();
        stats.refactorizations += setup.refactorizations();
        stats.factor_time = setup.factor_time();
        self.opts
            .obs
            .observe("solver_factor_seconds", stats.factor_time);
        let lu_g = setup.lu_g();

        // --- DC initial condition, unless a cached one was injected.
        let t0 = Instant::now();
        let x0 = match &self.dc {
            Some(cached) => {
                if cached.len() != sys.dim() {
                    return Err(CoreError::InvalidSpec(format!(
                        "injected DC solution has dim {}, system has {}",
                        cached.len(),
                        sys.dim()
                    )));
                }
                cached.as_ref().clone()
            }
            None => {
                stats.substitution_pairs += 1;
                setup.solve_g(&input.bu_at(t_start))
            }
        };
        stats.dc_time = t0.elapsed();
        if self.opts.obs.is_enabled() {
            let job = self.opts.obs.job();
            self.opts
                .obs
                .record_span("solver.dc", job, t0, stats.dc_time, &[]);
            self.opts.obs.observe("solver_dc_seconds", stats.dc_time);
        }

        // With a pool: every substitution of the run (operator applies
        // and input terms alike) replays a level-scheduled plan — taken
        // from the setup when it carries one, built once here otherwise.
        let mut sched_g_store: Option<SolveSchedule> = None;
        let mut sched_x1_store: Option<SolveSchedule> = None;
        let (sched_g, sched_x1): (Option<&SolveSchedule>, Option<&SolveSchedule>) =
            if self.pool.is_some() {
                let g = match setup.sched_g() {
                    Some(s) => s,
                    None => sched_g_store.insert(lu_g.solve_schedule()),
                };
                let x1 = match setup.lu_x1() {
                    Some(lu) => Some(match setup.sched_x1() {
                        Some(s) => s,
                        None => &*sched_x1_store.insert(lu.solve_schedule()),
                    }),
                    None => None,
                };
                (Some(g), x1)
            } else {
                (None, None)
            };
        let op_holder = match self.opts.kind {
            KrylovKind::Standard => {
                let mut op = StandardOp::new(setup.lu_x1().expect("lu(C) present"), sys.g());
                if let (Some(pool), Some(sched)) = (&self.pool, sched_x1) {
                    op = op.with_parallelism(ParApply {
                        pool: pool.as_ref(),
                        sched,
                    });
                }
                if let Some(smw) = setup.smw_x1() {
                    op = op.with_correction(smw);
                }
                OpHolder::Std(op)
            }
            KrylovKind::Inverted => {
                let mut op = InvertedOp::new(lu_g, sys.c());
                if let (Some(pool), Some(sched)) = (&self.pool, sched_g) {
                    op = op.with_parallelism(ParApply {
                        pool: pool.as_ref(),
                        sched,
                    });
                }
                if let Some(smw) = setup.smw_g() {
                    op = op.with_correction(smw);
                }
                OpHolder::Inv(op)
            }
            KrylovKind::Rational => {
                let mut op = RationalOp::new(
                    setup.lu_x1().expect("lu(C+γG) present"),
                    sys.c(),
                    self.opts.gamma,
                );
                if let (Some(pool), Some(sched)) = (&self.pool, sched_x1) {
                    op = op.with_parallelism(ParApply {
                        pool: pool.as_ref(),
                        sched,
                    });
                }
                if let Some(smw) = setup.smw_x1() {
                    op = op.with_correction(smw);
                }
                OpHolder::Rat(op)
            }
        };
        let op = op_holder.as_op();
        // Parallel context for the input-terms substitutions (always
        // against the G factorization).
        let terms_par: Option<(&ParPool, &SolveSchedule)> = match (&self.pool, sched_g) {
            (Some(pool), Some(sched)) => Some((pool.as_ref(), sched)),
            _ => None,
        };

        // --- Evaluation grid: output samples ∪ LTS.
        let mut eval = SpotSet::from_times(spec.sample_times());
        for &t in lts.iter() {
            if t > t_start {
                eval.insert(t);
            }
        }

        let tt = Instant::now();
        let mut rec = Recorder::new(spec, sys.dim());
        rec.record_at_sample(t_start, &x0);

        let n = sys.dim();
        let mut anchor_t = t_start;
        let mut anchor_x = x0;
        let mut win_end = next_window_end(&lts, anchor_t, t_stop);
        // Persistent input terms + scratch: the substitution hot path is
        // allocation-free after this point (see fp_terms.rs).
        let mut terms = IntervalTerms::new(n, input.num_sources());
        let mut terms_valid = false;
        let mut fbuf = vec![0.0; n];
        let mut pbuf = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut basis: Option<KrylovBasis> = None;
        let mut x_final = anchor_x.clone();
        // Batched snapshot evaluation: one weight batch (`T_H`) and one
        // pooled combination (`T_e`) cover every eval time of a window;
        // the evaluator owns all scratch, so the whole eval path is
        // allocation-free after warm-up (see tests/alloc_free.rs).
        let mut evaluator = SnapshotEvaluator::new();
        let mut hs_batch: Vec<f64> = Vec::new();
        let mut xbatch: Vec<f64> = Vec::new();
        let pool_ref: Option<&ParPool> = self.pool.as_deref();
        let times: &[f64] = eval.as_slice();
        let mut t_expm = Duration::ZERO;
        let mut t_comb = Duration::ZERO;
        let s_cap = self.opts.max_substeps.max(1);

        let mut idx = 0usize;
        // Ladder re-anchors spent on the current eval point (the legacy
        // per-point sub-step budget).
        let mut rounds = 0usize;
        // Batch width, doubling after each fully accepted chunk and
        // resetting on any rejection or anchor change: an all-pass
        // window quickly amortizes to wide pooled combinations, while a
        // window that sub-steps never wastes more than half of its
        // evaluated prefix on to-be-discarded weight columns.
        let mut chunk_size = 1usize;
        while idx < times.len() {
            // Cooperative cancellation: give up between steps, never
            // inside one, so leases and caches unwind cleanly.
            if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return Err(CoreError::Cancelled);
            }
            let te = times[idx];
            if te <= anchor_t + 1e-30 || te <= t_start {
                idx += 1;
                rounds = 0;
                continue;
            }
            let h = te - anchor_t;
            if !terms_valid {
                terms.recompute_corrected(
                    sys,
                    lu_g,
                    &input,
                    anchor_t,
                    win_end,
                    &mut stats,
                    terms_par,
                    setup.smw_g(),
                );
                terms_valid = true;
            }
            // v = x(anchor) + F(anchor)
            terms.f_into(&mut fbuf);
            for ((vi, x), f) in v.iter_mut().zip(&anchor_x).zip(&fbuf) {
                *vi = x + f;
            }
            if norm2(&v) == 0.0 {
                // Pure steady state: x(t+h) = −P(h).
                terms.p_into(h, &mut pbuf);
                xbatch.resize(n, 0.0);
                for (x, q) in xbatch.iter_mut().zip(&pbuf) {
                    *x = -q;
                }
                accept_point(
                    te,
                    &xbatch[..n],
                    &mut rec,
                    &mut x_final,
                    &mut stats,
                    &lts,
                    t_stop,
                    &mut anchor_t,
                    &mut anchor_x,
                    &mut win_end,
                    &mut terms_valid,
                    &mut basis,
                );
                idx += 1;
                rounds = 0;
                continue;
            }
            if basis.is_none() {
                // Build for the current target and the window end, so
                // snapshot reuse across the window holds; also check
                // intermediate offsets — on stiff systems the
                // residual at the window end underflows (all modes
                // decayed) while mid-window it is still large.
                let hw = (win_end - anchor_t).max(h);
                let checks = [h, hw, hw / 8.0, hw / 64.0];
                let arnoldi_span = self.opts.obs.span("solver.arnoldi");
                let built = build_basis_multi(op, &v, &checks, &self.opts.expm);
                drop(arnoldi_span);
                let outcome = match built {
                    Ok(o) => o,
                    Err(KrylovError::ZeroStartVector) => {
                        terms.p_into(h, &mut pbuf);
                        xbatch.resize(n, 0.0);
                        for (x, q) in xbatch.iter_mut().zip(&pbuf) {
                            *x = -q;
                        }
                        accept_point(
                            te,
                            &xbatch[..n],
                            &mut rec,
                            &mut x_final,
                            &mut stats,
                            &lts,
                            t_stop,
                            &mut anchor_t,
                            &mut anchor_x,
                            &mut win_end,
                            &mut terms_valid,
                            &mut basis,
                        );
                        idx += 1;
                        rounds = 0;
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                stats.krylov_bases += 1;
                stats.krylov_dim_sum += outcome.basis.m();
                stats.krylov_dim_peak = stats.krylov_dim_peak.max(outcome.basis.m());
                stats.substitution_pairs += outcome.substitutions;
                basis = Some(outcome.basis);
            }
            let b = basis.as_ref().expect("basis present");
            let tol_abs = self.opts.expm.tol * b.beta();

            // Batch every eval time of the current window: they all
            // evaluate from the same anchor, so one weight batch + one
            // pooled combination covers them. A non-finite projected
            // exponential (overflow from a sign-flipped Ritz artifact at
            // long reuse distances) surfaces as an ∞ estimate: force
            // sub-stepping, exactly like the per-call path did.
            hs_batch.clear();
            let mut jend = idx;
            while jend < times.len()
                && hs_batch.len() < chunk_size
                && times[jend] <= win_end * (1.0 + 1e-12)
            {
                hs_batch.push(times[jend] - anchor_t);
                jend += 1;
            }
            if hs_batch.is_empty() {
                hs_batch.push(h);
            }
            let t0 = Instant::now();
            evaluator.weights_many(b, &hs_batch)?;
            t_expm += t0.elapsed();
            stats.expm_evals += hs_batch.len();
            let accepted = evaluator
                .estimates()
                .iter()
                .take_while(|&&e| e <= tol_abs)
                .count();
            if accepted > 0 {
                let t0 = Instant::now();
                xbatch.resize(accepted * n, 0.0);
                evaluator.combine_into(b, accepted, pool_ref, &mut xbatch);
                for j in 0..accepted {
                    terms.p_into(hs_batch[j], &mut pbuf);
                    for (x, p) in xbatch[j * n..(j + 1) * n].iter_mut().zip(&pbuf) {
                        *x -= p;
                    }
                }
                for j in 0..accepted {
                    accept_point(
                        times[idx + j],
                        &xbatch[j * n..(j + 1) * n],
                        &mut rec,
                        &mut x_final,
                        &mut stats,
                        &lts,
                        t_stop,
                        &mut anchor_t,
                        &mut anchor_x,
                        &mut win_end,
                        &mut terms_valid,
                        &mut basis,
                    );
                }
                t_comb += t0.elapsed();
                idx += accepted;
                rounds = 0;
                if accepted == hs_batch.len() {
                    chunk_size = if basis.is_none() {
                        1 // window advanced: the next window starts cautious
                    } else {
                        (chunk_size * 2).min(MAX_BATCH)
                    };
                    continue;
                }
            }
            chunk_size = 1;

            // First rejected time: one squaring ladder replaces the
            // legacy halving retry loop — its intermediates are exactly
            // the exponentials at the halved trial distances.
            let te_f = times[idx];
            let h_f = te_f - anchor_t;
            let b = basis.as_ref().expect("basis survives a partial batch");
            // With the per-point budget exhausted, skip straight to the
            // best-effort acceptance (rung = None) instead of laddering.
            // Depths are staged (shallow first): the common shallow
            // sub-step finds its rung for a handful of squarings, and
            // only a genuinely stiff rejection pays the full ladder.
            let mut rung = None;
            if rounds < s_cap {
                let t0 = Instant::now();
                for depth in [4usize, 12, s_cap] {
                    let depth = depth.min(s_cap);
                    evaluator.eval_ladder(b, h_f, depth, tol_abs)?;
                    stats.expm_evals += 1;
                    rung = evaluator.best_rung(tol_abs);
                    if rung.is_some() || depth == s_cap {
                        break;
                    }
                }
                let d = t0.elapsed();
                t_expm += d;
                self.opts
                    .obs
                    .record_span("solver.expm_ladder", self.opts.obs.job(), t0, d, &[]);
            }
            match rung {
                Some(0) => {
                    // The ladder's own full-step value passes: accept it.
                    let t0 = Instant::now();
                    xbatch.resize(n, 0.0);
                    evaluator.combine_rung(b, 0, pool_ref, &mut xbatch[..n]);
                    terms.p_into(h_f, &mut pbuf);
                    for (x, p) in xbatch[..n].iter_mut().zip(&pbuf) {
                        *x -= p;
                    }
                    accept_point(
                        te_f,
                        &xbatch[..n],
                        &mut rec,
                        &mut x_final,
                        &mut stats,
                        &lts,
                        t_stop,
                        &mut anchor_t,
                        &mut anchor_x,
                        &mut win_end,
                        &mut terms_valid,
                        &mut basis,
                    );
                    t_comb += t0.elapsed();
                    idx += 1;
                    rounds = 0;
                }
                Some(s) => {
                    // Re-anchor at the longest passing rung h/2^s (a
                    // pseudo-anchor of Alg. 2) and rebuild there.
                    let hs = h_f * 0.5_f64.powi(s as i32);
                    let t0 = Instant::now();
                    xbatch.resize(n, 0.0);
                    evaluator.combine_rung(b, s, pool_ref, &mut xbatch[..n]);
                    terms.p_into(hs, &mut pbuf);
                    for (x, p) in xbatch[..n].iter_mut().zip(&pbuf) {
                        *x -= p;
                    }
                    t_comb += t0.elapsed();
                    anchor_t += hs;
                    anchor_x.copy_from_slice(&xbatch[..n]);
                    basis = None;
                    terms_valid = false;
                    stats.substeps += s;
                    rounds += 1;
                }
                None => {
                    // No rung passed (or the per-point budget ran out):
                    // accept the best-effort full-step value, or fail
                    // hard if it never went finite — legacy semantics.
                    let batch_col = accepted;
                    if !evaluator.estimates()[batch_col].is_finite() {
                        return Err(CoreError::Krylov(KrylovError::Dense(
                            matex_dense::DenseError::NotFinite,
                        )));
                    }
                    let t0 = Instant::now();
                    xbatch.resize(n, 0.0);
                    evaluator.combine_one(b, batch_col, pool_ref, &mut xbatch[..n]);
                    terms.p_into(h_f, &mut pbuf);
                    for (x, p) in xbatch[..n].iter_mut().zip(&pbuf) {
                        *x -= p;
                    }
                    accept_point(
                        te_f,
                        &xbatch[..n],
                        &mut rec,
                        &mut x_final,
                        &mut stats,
                        &lts,
                        t_stop,
                        &mut anchor_t,
                        &mut anchor_x,
                        &mut win_end,
                        &mut terms_valid,
                        &mut basis,
                    );
                    t_comb += t0.elapsed();
                    idx += 1;
                    rounds = 0;
                }
            }
        }
        stats.transient_time = tt.elapsed();
        stats.expm_time = t_expm;
        stats.combine_time = t_comb;
        // Formalize the paper's cost split on the timeline and the
        // metrics page: `T_H` (Krylov weights + ladder) vs `T_e`
        // (snapshot combination) vs the one-time factorization. The
        // synthetic spans anchor at the transient start so the trace
        // shows the split nested under the march.
        let obs = &self.opts.obs;
        if obs.is_enabled() {
            let job = obs.job();
            obs.record_span(
                "solver.transient",
                job,
                tt,
                stats.transient_time,
                &[("variant", self.opts.kind.label())],
            );
            obs.record_span("solver.expm", job, tt, t_expm, &[("phase", "T_H")]);
            obs.record_span("solver.combine", job, tt, t_comb, &[("phase", "T_e")]);
            obs.observe("solver_transient_seconds", stats.transient_time);
            obs.observe("solver_expm_seconds", t_expm);
            obs.observe("solver_combine_seconds", t_comb);
            obs.add("solver_runs_total", 1);
            obs.add("solver_krylov_bases_total", stats.krylov_bases as u64);
        }
        let (times, rows, series) = rec.finish();
        Ok(TransientResult::new(
            self.name(),
            times,
            rows,
            series,
            x_final,
            stats,
        ))
    }

    fn name(&self) -> String {
        match self.opts.kind {
            KrylovKind::Rational => format!("R-MATEX(γ={:.1e})", self.opts.gamma),
            k => k.label().to_string(),
        }
    }
}

/// Widest snapshot batch one weight/combination round may cover: bounds
/// the `n × MAX_BATCH` output staging buffer while keeping the pooled
/// combination wide enough to amortize dispatch.
const MAX_BATCH: usize = 32;

/// Acceptance bookkeeping shared by every evaluation path: counts the
/// step, records the value if it lands on the next output sample, tracks
/// the final state, and advances the window when the accepted point is a
/// local transition spot or the window end (a new Krylov subspace is
/// required there — the input slope changes).
#[allow(clippy::too_many_arguments)]
fn accept_point(
    te: f64,
    x_te: &[f64],
    rec: &mut Recorder,
    x_final: &mut [f64],
    stats: &mut SolveStats,
    lts: &SpotSet,
    t_stop: f64,
    anchor_t: &mut f64,
    anchor_x: &mut [f64],
    win_end: &mut f64,
    terms_valid: &mut bool,
    basis: &mut Option<KrylovBasis>,
) {
    stats.steps += 1;
    if let Some(ts) = rec.next_sample() {
        if (ts - te).abs() <= 1e-9 * ts.abs().max(1e-30) + 1e-30 {
            rec.record_at_sample(te, x_te);
        }
    }
    x_final.copy_from_slice(x_te);
    if lts.contains(te) || te >= *win_end * (1.0 - 1e-12) {
        *anchor_t = te;
        anchor_x.copy_from_slice(x_te);
        *terms_valid = false;
        *basis = None;
        *win_end = next_window_end(lts, te, t_stop);
    }
}

/// End of the input-linearity window starting at `t`: the next LTS, or
/// the simulation end.
fn next_window_end(lts: &SpotSet, t: f64, t_stop: f64) -> f64 {
    match lts.next_after(t) {
        Some(next) if next < t_stop => next,
        _ => t_stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trapezoidal;
    use matex_circuit::{Netlist, RcMeshBuilder};
    use matex_waveform::{Pulse, Waveform};

    fn pulsed_rc() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    fn check_against_reference(kind: KrylovKind, sys: &MnaSystem, tol: f64) {
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let solver = MatexSolver::new(MatexOptions::new(kind).tol(1e-9));
        let result = solver.run(sys, &spec).unwrap();
        // Second-order reference at 0.2 ps: its own error is ~1e-7.
        let reference = Trapezoidal::new(2e-13).run(sys, &spec).unwrap();
        let (max_err, _) = result.error_vs(&reference).unwrap();
        assert!(
            max_err < tol,
            "{}: max error {max_err:.3e} vs reference",
            kind.label()
        );
    }

    #[test]
    fn rational_matches_reference_on_rc() {
        check_against_reference(KrylovKind::Rational, &pulsed_rc(), 5e-6);
    }

    #[test]
    fn inverted_matches_reference_on_rc() {
        check_against_reference(KrylovKind::Inverted, &pulsed_rc(), 5e-6);
    }

    #[test]
    fn standard_matches_reference_on_rc() {
        check_against_reference(KrylovKind::Standard, &pulsed_rc(), 5e-6);
    }

    #[test]
    fn rational_on_mesh_matches_tr() {
        let sys = RcMeshBuilder::new(5, 5).build().unwrap();
        let spec = TransientSpec::new(0.0, 5e-10, 1e-11).unwrap();
        let matex = MatexSolver::new(MatexOptions::default().tol(1e-8))
            .run(&sys, &spec)
            .unwrap();
        let tr = Trapezoidal::new(5e-13).run(&sys, &spec).unwrap();
        let (max_err, _) = matex.error_vs(&tr).unwrap();
        assert!(max_err < 1e-5, "mesh error {max_err:.3e}");
    }

    #[test]
    fn no_refactorization_during_transient() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let result = MatexSolver::new(MatexOptions::default())
            .run(&sys, &spec)
            .unwrap();
        // G + (C + γG): exactly two factorizations, regardless of steps.
        assert_eq!(result.stats.factorizations, 2);
        assert!(result.stats.krylov_bases >= 1);
    }

    #[test]
    fn inverted_reuses_g_factorization() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let result = MatexSolver::new(MatexOptions::new(KrylovKind::Inverted))
            .run(&sys, &spec)
            .unwrap();
        assert_eq!(result.stats.factorizations, 1);
    }

    #[test]
    fn standard_regularizes_singular_c() {
        // Node b has no capacitor: C is singular; MEXP must still run.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let p = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r1", a, b, 500.0).unwrap();
        nl.add_resistor("r2", b, Netlist::ground(), 500.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        assert!(!sys.zero_c_rows().is_empty());
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let mexp = MatexSolver::new(MatexOptions::new(KrylovKind::Standard))
            .run(&sys, &spec)
            .unwrap();
        // Inverted variant needs no regularization — compare them.
        let imatex = MatexSolver::new(MatexOptions::new(KrylovKind::Inverted).tol(1e-9))
            .run(&sys, &spec)
            .unwrap();
        let (max_err, _) = mexp.error_vs(&imatex).unwrap();
        assert!(max_err < 1e-3, "regularized MEXP deviates: {max_err:.3e}");
    }

    #[test]
    fn masked_subtasks_superpose() {
        // Two pulse loads: run each in its own subtask, sum, compare to
        // the monolithic run. This is the core distributed-MATEX property.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let p1 = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
        let p2 = Pulse::new(0.0, 2e-3, 4e-10, 5e-11, 1e-10, 5e-11).unwrap();
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Pulse(p1))
            .unwrap();
        nl.add_isource("i2", Netlist::ground(), b, Waveform::Pulse(p2))
            .unwrap();
        nl.add_resistor("r1", a, b, 100.0).unwrap();
        nl.add_resistor("r2", b, Netlist::ground(), 100.0).unwrap();
        nl.add_resistor("r3", a, Netlist::ground(), 100.0).unwrap();
        nl.add_capacitor("c1", a, Netlist::ground(), 1e-13).unwrap();
        nl.add_capacitor("c2", b, Netlist::ground(), 2e-13).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let opts = || MatexOptions::default().tol(1e-10);
        let full = MatexSolver::new(opts()).run(&sys, &spec).unwrap();
        let sub1 = MatexSolver::new(opts())
            .with_source_mask(vec![0])
            .run(&sys, &spec)
            .unwrap();
        let sub2 = MatexSolver::new(opts())
            .with_source_mask(vec![1])
            .run(&sys, &spec)
            .unwrap();
        let mut sum = sub1.clone();
        sum.add_scaled(&sub2, 1.0).unwrap();
        let (max_err, _) = sum.error_vs(&full).unwrap();
        assert!(max_err < 1e-7, "superposition violated: {max_err:.3e}");
    }

    #[test]
    fn symbolic_reuse_is_bitwise_identical_across_gammas() {
        // The two-phase contract at the solver level: a γ sweep over one
        // shared analysis produces exactly the waveforms the fresh-factor
        // path produces, while every factorization becomes a replay.
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let symbolic = Arc::new(MatexSymbolic::analyze(&sys, &MatexOptions::default()).unwrap());
        for gamma in [5e-11, 1e-10, 4e-10] {
            let opts = MatexOptions::default().gamma(gamma);
            let fresh = MatexSolver::new(opts.clone()).run(&sys, &spec).unwrap();
            let reused = MatexSolver::new(opts)
                .with_symbolic(symbolic.clone())
                .run(&sys, &spec)
                .unwrap();
            assert_eq!(fresh.series(), reused.series(), "γ={gamma}");
            assert_eq!(fresh.final_state(), reused.final_state());
            assert_eq!(fresh.stats.refactorizations, 0);
            // G and C + γG both replayed the shared analysis.
            assert_eq!(reused.stats.factorizations, 2);
            assert_eq!(reused.stats.refactorizations, 2, "γ={gamma}");
        }
    }

    #[test]
    fn symbolic_reuse_covers_inverted_and_standard_dc() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        for kind in [KrylovKind::Inverted, KrylovKind::Standard] {
            let opts = MatexOptions::new(kind);
            let symbolic = Arc::new(MatexSymbolic::analyze(&sys, &opts).unwrap());
            let fresh = MatexSolver::new(opts.clone()).run(&sys, &spec).unwrap();
            let reused = MatexSolver::new(opts)
                .with_symbolic(symbolic)
                .run(&sys, &spec)
                .unwrap();
            assert_eq!(fresh.series(), reused.series());
            // Only the G factorization can replay on these variants.
            assert_eq!(reused.stats.refactorizations, 1);
        }
    }

    #[test]
    fn pooled_run_is_pool_width_invariant_and_close_to_serial() {
        // The tentpole determinism contract at the solver level: any
        // pool width produces bit-for-bit the waveform of the one-thread
        // pool, and the pool-less legacy path agrees to rounding (the
        // pooled orthogonalization is CGS2 instead of MGS2).
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        for kind in [
            KrylovKind::Rational,
            KrylovKind::Inverted,
            KrylovKind::Standard,
        ] {
            let opts = MatexOptions::new(kind);
            let legacy = MatexSolver::new(opts.clone()).run(&sys, &spec).unwrap();
            let reference = MatexSolver::new(opts.clone())
                .with_parallelism(Arc::new(matex_par::ParPool::serial()))
                .run(&sys, &spec)
                .unwrap();
            for threads in [2usize, 3] {
                let run = MatexSolver::new(opts.clone())
                    .with_parallelism(Arc::new(matex_par::ParPool::new(threads)))
                    .run(&sys, &spec)
                    .unwrap();
                assert_eq!(
                    reference.series(),
                    run.series(),
                    "{kind:?}: {threads}-thread waveform diverged from 1-thread"
                );
                assert_eq!(reference.final_state(), run.final_state());
            }
            let (max_err, _) = reference.error_vs(&legacy).unwrap();
            assert!(
                max_err < 1e-9,
                "{kind:?}: pooled path deviates from legacy serial: {max_err:.3e}"
            );
        }
    }

    #[test]
    fn ladder_substeps_engage_and_waveform_stays_accurate() {
        // Force the sub-step path with an RLC grid (oscillatory modes)
        // and a deliberately starved basis budget: the squaring ladder
        // must insert pseudo-anchors (Alg. 2) and the waveform must
        // still track the Trapezoidal reference.
        let sys = matex_circuit::PdnBuilder::new(10, 10)
            .num_loads(25)
            .num_features(4)
            .window(1e-8)
            .cap_spread(30.0)
            .seed(1003)
            .pad_inductance(1e-11)
            .build()
            .unwrap();
        let spec = TransientSpec::new(0.0, 1e-8, 1e-10).unwrap();
        let mut opts = MatexOptions::new(KrylovKind::Rational).tol(1e-8);
        opts.expm.m_max = 6;
        let matex = MatexSolver::new(opts).run(&sys, &spec).unwrap();
        assert!(
            matex.stats.substeps > 0,
            "starved basis should force sub-stepping"
        );
        // One staged ladder (≤ 3 calls) per rejected point instead of a
        // fresh expm per halving trial: the expm count stays bounded by
        // a small multiple of the accepted steps.
        assert!(matex.stats.expm_evals <= 4 * matex.stats.steps + 3 * matex.stats.substeps);
        let tr = Trapezoidal::new(5e-12).run(&sys, &spec).unwrap();
        let (max_err, _) = matex.error_vs(&tr).unwrap();
        assert!(max_err < 1e-2, "sub-stepped waveform error {max_err:.3e}");
        // The timing split covers the snapshot phase.
        assert!(matex.stats.expm_time + matex.stats.combine_time <= matex.stats.transient_time);
    }

    #[test]
    fn injected_setup_and_dc_are_bitwise_identical() {
        // The setup/run split contract: a shared MatexSetup (with or
        // without a cached DC solution) yields bit-for-bit the waveform
        // of a self-preparing run, for every variant, pooled or not.
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        for kind in [
            KrylovKind::Rational,
            KrylovKind::Inverted,
            KrylovKind::Standard,
        ] {
            let opts = MatexOptions::new(kind);
            let fresh = MatexSolver::new(opts.clone()).run(&sys, &spec).unwrap();
            let setup = Arc::new(MatexSetup::prepare(&sys, &opts, None, false).unwrap());
            let reused = MatexSolver::new(opts.clone())
                .with_setup(setup.clone())
                .run(&sys, &spec)
                .unwrap();
            assert_eq!(fresh.series(), reused.series(), "{kind:?}");
            assert_eq!(fresh.final_state(), reused.final_state());
            // Amortized counters still satisfy the run invariants.
            assert_eq!(fresh.stats.factorizations, reused.stats.factorizations);
            // DC injection: hand the run its own x₀ back.
            let x0 = Arc::new(setup.lu_g().solve(&sys.bu_at(0.0)));
            let with_dc = MatexSolver::new(opts.clone())
                .with_setup(setup.clone())
                .with_dc(x0)
                .run(&sys, &spec)
                .unwrap();
            assert_eq!(fresh.series(), with_dc.series(), "{kind:?} with DC");
            // A pooled run over a schedule-less setup builds schedules
            // itself and stays bitwise equal to a pool-prepared run.
            let pooled_fresh = MatexSolver::new(opts.clone())
                .with_parallelism(Arc::new(matex_par::ParPool::new(2)))
                .run(&sys, &spec)
                .unwrap();
            let pooled_reused = MatexSolver::new(opts.clone())
                .with_setup(setup)
                .with_parallelism(Arc::new(matex_par::ParPool::new(2)))
                .run(&sys, &spec)
                .unwrap();
            assert_eq!(pooled_fresh.series(), pooled_reused.series());
            // Mismatched setups are rejected, not silently used.
            let wrong = Arc::new(
                MatexSetup::prepare(&sys, &MatexOptions::default().gamma(3e-10), None, false)
                    .unwrap(),
            );
            if kind == KrylovKind::Rational {
                assert!(MatexSolver::new(opts)
                    .with_setup(wrong)
                    .run(&sys, &spec)
                    .is_err());
            }
        }
    }

    #[test]
    fn fewer_substitutions_than_fixed_tr() {
        // The headline claim: MATEX needs far fewer substitution pairs
        // than 100-step fixed TR on the same window.
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let matex = MatexSolver::new(MatexOptions::default())
            .run(&sys, &spec)
            .unwrap();
        let tr = Trapezoidal::new(1e-11).run(&sys, &spec).unwrap();
        assert!(
            matex.stats.substitution_pairs * 2 < tr.stats.substitution_pairs,
            "MATEX pairs {} not well below TR pairs {}",
            matex.stats.substitution_pairs,
            tr.stats.substitution_pairs
        );
    }
}
