//! Shared symbolic-factorization cache for the MATEX engines.
//!
//! Every [`MatexSolver`](crate::MatexSolver) run factors `G` (for the DC
//! condition and the input terms) and — on the rational variant — the
//! shifted system `C + γG`. Across a γ sweep, across the engine
//! comparisons of Table 1, and across the distributed framework's
//! per-node runs, those matrices keep one nonzero pattern: only the
//! values change (or nothing at all, for the masked node runs). A
//! [`MatexSymbolic`] performs the sparsity analysis once and lets every
//! subsequent run replay cheap numeric refactorizations, skipping the
//! AMD ordering and the Gilbert–Peierls reach DFS entirely.
//!
//! The object is immutable after [`MatexSymbolic::analyze`], so a single
//! `Arc<MatexSymbolic>` is shared read-only across distributed worker
//! threads (see `matex_dist::run_distributed`).

use crate::{CoreError, SolveStats};
use matex_circuit::MnaSystem;
use matex_krylov::KrylovKind;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu, SymbolicLu};
use matex_sparse::{WireError, WireReader, WireWriter};

/// One system's reusable symbolic factorizations.
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{MatexOptions, MatexSolver, MatexSymbolic, TransientEngine, TransientSpec};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(4, 4).build()?;
/// let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
/// let opts = MatexOptions::default();
/// // Analyze once, then sweep γ with numeric-replay factorizations.
/// let symbolic = Arc::new(MatexSymbolic::analyze(&sys, &opts)?);
/// for gamma in [5e-11, 1e-10, 2e-10] {
///     let solver = MatexSolver::new(opts.clone().gamma(gamma))
///         .with_symbolic(symbolic.clone());
///     let result = solver.run(&sys, &spec)?;
///     // Both factorizations replayed the shared analysis.
///     assert_eq!(result.stats.refactorizations, 2);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MatexSymbolic {
    lu_opts: LuOptions,
    g: SymbolicLu,
    shifted: Option<SymbolicLu>,
}

impl MatexSymbolic {
    /// Analyzes `G` and — for the rational variant — the shifted system
    /// `C + γG` of the given options.
    ///
    /// # Errors
    ///
    /// Propagates sparse analysis failures ([`CoreError::Sparse`]).
    pub fn analyze(sys: &MnaSystem, opts: &crate::MatexOptions) -> Result<Self, CoreError> {
        let lu_opts = LuOptions::default();
        let g = SymbolicLu::analyze(sys.g(), &lu_opts)?;
        let shifted = match opts.kind {
            KrylovKind::Rational => {
                let m = CsrMatrix::linear_combination(1.0, sys.c(), opts.gamma, sys.g())?;
                Some(SymbolicLu::analyze(&m, &lu_opts)?)
            }
            // The inverted variant factors only G; the standard variant
            // factors a (possibly regularized) C with its own pattern.
            _ => None,
        };
        Ok(MatexSymbolic {
            lu_opts,
            g,
            shifted,
        })
    }

    /// The symbolic analysis of `G`.
    pub fn g(&self) -> &SymbolicLu {
        &self.g
    }

    /// The symbolic analysis of the shifted pattern `C + γG`, when the
    /// analyzed options used the rational variant.
    pub fn shifted(&self) -> Option<&SymbolicLu> {
        self.shifted.as_ref()
    }

    /// The LU options the analyses were performed with.
    pub fn lu_options(&self) -> &LuOptions {
        &self.lu_opts
    }

    /// Appends the full analysis bundle to `w` for the artifact store.
    /// A decoded bundle drives the same bitwise numeric replays as the
    /// one that was encoded.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        self.lu_opts.wire_encode(w);
        self.g.wire_encode(w);
        w.u8(self.shifted.is_some() as u8);
        if let Some(sh) = &self.shifted {
            sh.wire_encode(w);
        }
    }

    /// Decodes a bundle previously written by
    /// [`MatexSymbolic::wire_encode`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or structurally invalid analyses.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lu_opts = LuOptions::wire_decode(r)?;
        let g = SymbolicLu::wire_decode(r)?;
        let shifted = match r.u8()? {
            0 => None,
            _ => Some(SymbolicLu::wire_decode(r)?),
        };
        Ok(MatexSymbolic {
            lu_opts,
            g,
            shifted,
        })
    }

    /// Factors `g` by numeric replay, falling back to a full
    /// factorization on pivot degradation; updates the counters.
    pub(crate) fn refactor_g(
        &self,
        g: &CsrMatrix,
        stats: &mut SolveStats,
    ) -> Result<SparseLu, CoreError> {
        stats.factorizations += 1;
        match self.g.try_refactor(g)? {
            Some(lu) => {
                stats.refactorizations += 1;
                Ok(lu)
            }
            None => Ok(SparseLu::factor(g, &self.lu_opts)?),
        }
    }
}
