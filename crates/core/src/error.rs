use std::fmt;

/// Errors from transient-simulation engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The transient specification was inconsistent (non-positive window,
    /// bad sample step, ...).
    InvalidSpec(String),
    /// An engine option was invalid.
    InvalidOption(String),
    /// The adaptive step controller could not meet its tolerance above
    /// the minimum step size.
    StepUnderflow {
        /// Time at which the controller gave up.
        at: f64,
        /// The rejected step size.
        h: f64,
    },
    /// Two results could not be compared (different grids/rows).
    Incomparable(String),
    /// The run's [`CancelToken`](crate::CancelToken) was tripped; the
    /// solver stopped at the next transient-step boundary.
    Cancelled,
    /// Circuit-level failure (DC, assembly, regularization).
    Circuit(matex_circuit::CircuitError),
    /// Sparse-solver failure.
    Sparse(matex_sparse::SparseError),
    /// Krylov kernel failure.
    Krylov(matex_krylov::KrylovError),
    /// A worker panicked; the payload message is preserved so supervisors
    /// can report *what* unwound instead of a generic failure.
    Panicked(String),
    /// A fault injected by an armed [`FaultHook`](crate::FaultHook) at
    /// the named site (test/bench-only by construction: disarmed hooks
    /// never produce this).
    Injected {
        /// The fault site that fired (`"dist.node"`, ...).
        site: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSpec(m) => write!(f, "invalid transient spec: {m}"),
            CoreError::InvalidOption(m) => write!(f, "invalid option: {m}"),
            CoreError::StepUnderflow { at, h } => {
                write!(f, "adaptive step underflow at t = {at:.3e} (h = {h:.3e})")
            }
            CoreError::Incomparable(m) => write!(f, "results are not comparable: {m}"),
            CoreError::Cancelled => write!(f, "run cancelled"),
            CoreError::Circuit(e) => write!(f, "circuit error: {e}"),
            CoreError::Sparse(e) => write!(f, "sparse error: {e}"),
            CoreError::Krylov(e) => write!(f, "krylov error: {e}"),
            CoreError::Panicked(m) => write!(f, "worker panicked: {m}"),
            CoreError::Injected { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Circuit(e) => Some(e),
            CoreError::Sparse(e) => Some(e),
            CoreError::Krylov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<matex_circuit::CircuitError> for CoreError {
    fn from(e: matex_circuit::CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<matex_sparse::SparseError> for CoreError {
    fn from(e: matex_sparse::SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

impl From<matex_krylov::KrylovError> for CoreError {
    fn from(e: matex_krylov::KrylovError) -> Self {
        CoreError::Krylov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::StepUnderflow { at: 1e-9, h: 1e-15 };
        assert!(e.to_string().contains("underflow"));
        let wrapped = CoreError::from(matex_sparse::SparseError::Singular { column: 0 });
        assert!(wrapped.source().is_some());
    }
}
