//! Trapezoidal method with fixed step — the paper's primary baseline.
//!
//! This is the TAU-contest-style power-grid solver (paper Sec. 2.1,
//! Eq. (2)): factor `(C/h + G/2)` once, then each step costs one sparse
//! mat-vec with `(C/h − G/2)` plus one forward/backward substitution pair.
//! Table 3 compares distributed MATEX against exactly this engine at
//! `h = 10 ps` (1000 steps over 10 ns → the `t1000` column).

use crate::engine::{InputEval, Recorder, TransientEngine};
use crate::{CoreError, SolveStats, TransientResult, TransientSpec};
use matex_circuit::MnaSystem;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use std::time::Instant;

/// Fixed-step trapezoidal engine.
///
/// # Example
///
/// ```
/// use matex_circuit::RcMeshBuilder;
/// use matex_core::{Trapezoidal, TransientEngine, TransientSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = RcMeshBuilder::new(3, 3).build()?;
/// let spec = TransientSpec::new(0.0, 1e-10, 1e-11)?;
/// let result = Trapezoidal::new(1e-11).run(&sys, &spec)?;
/// assert_eq!(result.num_time_points(), 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trapezoidal {
    h: f64,
    mask: Option<Vec<usize>>,
}

impl Trapezoidal {
    /// Creates the engine with step size `h` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `h` is not positive and finite.
    pub fn new(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "step size must be positive");
        Trapezoidal { h, mask: None }
    }

    /// Restricts the active sources (superposition subtask mode).
    pub fn with_source_mask(mut self, members: Vec<usize>) -> Self {
        self.mask = Some(members);
        self
    }

    /// The fixed step size.
    pub fn h(&self) -> f64 {
        self.h
    }
}

impl TransientEngine for Trapezoidal {
    fn run(&self, sys: &MnaSystem, spec: &TransientSpec) -> Result<TransientResult, CoreError> {
        let mut stats = SolveStats::default();
        let input = match &self.mask {
            None => InputEval::new(sys),
            Some(m) => InputEval::masked(sys, m),
        };

        let t0 = Instant::now();
        let lu_g = SparseLu::factor(sys.g(), &LuOptions::default())?;
        let mut x = lu_g.solve(&input.bu_at(spec.t_start()));
        stats.substitution_pairs += 1;
        stats.factorizations += 1;
        stats.dc_time = t0.elapsed();

        // Factor (C/h + G/2); keep (C/h − G/2) for the step mat-vec.
        let tf = Instant::now();
        let lhs = CsrMatrix::linear_combination(1.0 / self.h, sys.c(), 0.5, sys.g())?;
        let rhs_mat = CsrMatrix::linear_combination(1.0 / self.h, sys.c(), -0.5, sys.g())?;
        let lu = SparseLu::factor(&lhs, &LuOptions::default())?;
        stats.factorizations += 1;
        stats.factor_time = tf.elapsed();

        let tt = Instant::now();
        let mut rec = Recorder::new(spec, sys.dim());
        rec.record_step(spec.t_start(), &x, spec.t_start(), &x);
        let mut t = spec.t_start();
        let mut out = vec![0.0; sys.dim()];
        let mut work = vec![0.0; sys.dim()];
        let mut rhs = vec![0.0; sys.dim()];
        let mut bu_now = input.bu_at(t);
        while t < spec.t_stop() - 1e-12 * self.h {
            let h = self.h.min(spec.t_stop() - t);
            let tn = t + h;
            let bu_next = input.bu_at(tn);
            if (h - self.h).abs() > 1e-9 * self.h {
                // Ragged final step: refactor at the shortened h.
                let lhs2 = CsrMatrix::linear_combination(1.0 / h, sys.c(), 0.5, sys.g())?;
                let rhs2 = CsrMatrix::linear_combination(1.0 / h, sys.c(), -0.5, sys.g())?;
                let lu2 = SparseLu::factor(&lhs2, &LuOptions::default())?;
                stats.factorizations += 1;
                rhs2.matvec_into(&x, &mut rhs);
                for i in 0..rhs.len() {
                    rhs[i] += 0.5 * (bu_now[i] + bu_next[i]);
                }
                lu2.solve_into(&rhs, &mut out, &mut work);
            } else {
                rhs_mat.matvec_into(&x, &mut rhs);
                for i in 0..rhs.len() {
                    rhs[i] += 0.5 * (bu_now[i] + bu_next[i]);
                }
                lu.solve_into(&rhs, &mut out, &mut work);
            }
            stats.substitution_pairs += 1;
            stats.steps += 1;
            rec.record_step(t, &x, tn, &out);
            x.copy_from_slice(&out);
            bu_now = bu_next;
            t = tn;
        }
        stats.transient_time = tt.elapsed();
        let (times, rows, series) = rec.finish();
        Ok(TransientResult::new(
            self.name(),
            times,
            rows,
            series,
            x,
            stats,
        ))
    }

    fn name(&self) -> String {
        format!("TR(h={:.3e})", self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackwardEuler;
    use matex_circuit::Netlist;
    use matex_waveform::{Pulse, Waveform};

    /// RC driven by a rising pulse; compare TR against fine BE.
    fn pulsed_rc() -> MnaSystem {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let p = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
        nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        MnaSystem::assemble(&nl).unwrap()
    }

    #[test]
    fn tr_close_to_fine_be() {
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let tr = Trapezoidal::new(1e-11).run(&sys, &spec).unwrap();
        let be = BackwardEuler::new(2e-13).run(&sys, &spec).unwrap();
        let (max_err, _) = tr.error_vs(&be).unwrap();
        // Peak is ~0.1 V; TR at 10 ps should be within a millivolt-ish.
        assert!(max_err < 2e-3, "TR deviates from reference: {max_err}");
    }

    #[test]
    fn tr_second_order_convergence() {
        // Halving h should cut the error by ~4x (order 2). The reference
        // must itself be second order, or its own error dominates.
        let sys = pulsed_rc();
        let spec = TransientSpec::new(0.0, 1e-9, 5e-11).unwrap();
        let reference = Trapezoidal::new(1e-13).run(&sys, &spec).unwrap();
        let e1 = Trapezoidal::new(1e-11)
            .run(&sys, &spec)
            .unwrap()
            .error_vs(&reference)
            .unwrap()
            .0;
        let e2 = Trapezoidal::new(5e-12)
            .run(&sys, &spec)
            .unwrap()
            .error_vs(&reference)
            .unwrap()
            .0;
        // Allow slack: reference itself has O(h_ref) error.
        assert!(
            e2 < e1 / 2.0,
            "no second-order behaviour: e(h)={e1:.3e}, e(h/2)={e2:.3e}"
        );
    }

    #[test]
    fn one_factorization_for_aligned_grid() {
        let sys = pulsed_rc();
        // 1e-9 / 1e-11 = 100 steps exactly: no ragged final step.
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let r = Trapezoidal::new(1e-11).run(&sys, &spec).unwrap();
        // One for G (DC), one for (C/h + G/2).
        assert_eq!(r.stats.factorizations, 2);
        assert_eq!(r.stats.steps, 100);
    }

    #[test]
    fn masked_run_uses_subset() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_isource("i1", Netlist::ground(), a, Waveform::Dc(1e-3))
            .unwrap();
        nl.add_isource("i2", Netlist::ground(), a, Waveform::Dc(5e-3))
            .unwrap();
        nl.add_resistor("r", a, Netlist::ground(), 1000.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-10, 1e-11).unwrap();
        let full = Trapezoidal::new(1e-11).run(&sys, &spec).unwrap();
        let m1 = Trapezoidal::new(1e-11)
            .with_source_mask(vec![0])
            .run(&sys, &spec)
            .unwrap();
        let m2 = Trapezoidal::new(1e-11)
            .with_source_mask(vec![1])
            .run(&sys, &spec)
            .unwrap();
        // Superposition: masked runs sum to the full run.
        let mut sum = m1.clone();
        sum.add_scaled(&m2, 1.0).unwrap();
        let (max_err, _) = sum.error_vs(&full).unwrap();
        assert!(max_err < 1e-12, "superposition violated: {max_err}");
    }
}
