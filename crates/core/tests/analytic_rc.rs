//! Ground-truth validation of every engine against the closed-form
//! solution of a single-node RC circuit driven by a pulse current.
//!
//! For `C v' = −v/R + i(t)` with `i` linear on a segment
//! (`i(t) = a + b·(t − t0)`), the exact solution is
//!
//! ```text
//! v_p(t) = R(a + b(t−t0)) − R·b·τ          (particular, τ = RC)
//! v(t)   = v_p(t) + (v(t0) − v_p(t0)) e^{−(t−t0)/τ}
//! ```
//!
//! stitched across the pulse's breakpoints. This is independent of all
//! numerical machinery, so it cleanly separates engine error from
//! reference error.

use matex_circuit::{MnaSystem, Netlist};
use matex_core::{
    BackwardEuler, KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec,
    Trapezoidal, TrapezoidalAdaptive,
};
use matex_waveform::{Pulse, Waveform};

const R: f64 = 1000.0;
const CAP: f64 = 1e-13;
const TAU: f64 = R * CAP; // 1e-10 s

fn pulse() -> Pulse {
    Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap()
}

fn circuit() -> MnaSystem {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(pulse()))
        .unwrap();
    nl.add_resistor("r", a, Netlist::ground(), R).unwrap();
    nl.add_capacitor("c", a, Netlist::ground(), CAP).unwrap();
    MnaSystem::assemble(&nl).unwrap()
}

/// Exact v(t) for the pulse-driven RC node, evaluated on a time grid.
fn analytic(times: &[f64]) -> Vec<f64> {
    let p = pulse();
    let w = Waveform::Pulse(p);
    // Segment breakpoints.
    let mut bps = vec![0.0];
    bps.extend(w.transition_spots(1e-6));
    bps.push(1e-6);
    let mut out = Vec::with_capacity(times.len());
    // March segment by segment, keeping the exact state at each
    // breakpoint.
    let mut v0 = 0.0; // DC: i(0) = 0
    let mut seg = 0usize;
    for &t in times {
        while seg + 1 < bps.len() - 1 && t > bps[seg + 1] + 1e-18 {
            // Advance the segment state to the next breakpoint.
            v0 = exact_on_segment(&w, bps[seg], v0, bps[seg + 1]);
            seg += 1;
        }
        out.push(exact_on_segment(&w, bps[seg], v0, t));
    }
    out
}

/// Exact solution at time `t` within the linear segment starting at `t0`
/// with initial value `v0`.
fn exact_on_segment(w: &Waveform, t0: f64, v0: f64, t: f64) -> f64 {
    if t <= t0 {
        return v0;
    }
    let dt = 1e-15;
    let a = w.value(t0);
    let b = (w.value(t0 + dt) - w.value(t0)) / dt; // segment slope
    let vp = |tt: f64| R * (a + b * (tt - t0)) - R * b * TAU;
    vp(t) + (v0 - vp(t0)) * (-(t - t0) / TAU).exp()
}

fn max_err_vs_analytic(result: &matex_core::TransientResult) -> f64 {
    let exact = analytic(result.times());
    result
        .waveform(0)
        .expect("node a recorded")
        .iter()
        .zip(&exact)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

fn spec() -> TransientSpec {
    TransientSpec::new(0.0, 1e-9, 1e-11).unwrap()
}

#[test]
fn backward_euler_first_order() {
    let sys = circuit();
    let e1 = max_err_vs_analytic(&BackwardEuler::new(1e-12).run(&sys, &spec()).unwrap());
    let e2 = max_err_vs_analytic(&BackwardEuler::new(5e-13).run(&sys, &spec()).unwrap());
    // First order: halving h halves the error (within slack). The
    // absolute level is large because τ = 100 ps makes this a demanding
    // waveform for a first-order method.
    assert!(
        e2 < 0.7 * e1,
        "BE not converging: e(h)={e1:.3e}, e(h/2)={e2:.3e}"
    );
    assert!(e1 < 2e-2, "BE error too large: {e1:.3e}");
}

#[test]
fn trapezoidal_second_order() {
    let sys = circuit();
    let e1 = max_err_vs_analytic(&Trapezoidal::new(1e-11).run(&sys, &spec()).unwrap());
    let e2 = max_err_vs_analytic(&Trapezoidal::new(5e-12).run(&sys, &spec()).unwrap());
    assert!(
        e2 < 0.3 * e1,
        "TR not second order: e(h)={e1:.3e}, e(h/2)={e2:.3e}"
    );
    assert!(e1 < 5e-3, "TR error too large: {e1:.3e}");
}

#[test]
fn adaptive_tr_meets_tolerance() {
    let sys = circuit();
    let r = TrapezoidalAdaptive::new(1e-5, 1e-12)
        .run(&sys, &spec())
        .unwrap();
    let e = max_err_vs_analytic(&r);
    // Sample-grid values are linearly interpolated between the (long)
    // accepted steps, so the recorded error is interpolation-dominated;
    // the integration itself is LTE-controlled.
    assert!(e < 2e-2, "adaptive TR error {e:.3e}");
    // Bounding the step from above must shrink the interpolation error.
    let mut clamped = TrapezoidalAdaptive::new(1e-5, 1e-12);
    clamped.h_max = 1e-11;
    let e_clamped = max_err_vs_analytic(&clamped.run(&sys, &spec()).unwrap());
    assert!(
        e_clamped < e,
        "clamped steps did not help: {e_clamped:.3e} vs {e:.3e}"
    );
}

#[test]
fn matex_variants_hit_krylov_tolerance() {
    let sys = circuit();
    for kind in [
        KrylovKind::Standard,
        KrylovKind::Inverted,
        KrylovKind::Rational,
    ] {
        let r = MatexSolver::new(MatexOptions::new(kind).tol(1e-9))
            .run(&sys, &spec())
            .unwrap();
        let e = max_err_vs_analytic(&r);
        // The exponential update is exact for PWL inputs: the only error
        // sources are the Krylov projection and the tiny-dt slope probe
        // in the analytic reference.
        assert!(e < 1e-7, "{}: error vs analytic {e:.3e}", kind.label());
    }
}

#[test]
fn matex_exactness_beats_tr_at_equal_output_grid() {
    let sys = circuit();
    let tr = Trapezoidal::new(1e-11).run(&sys, &spec()).unwrap();
    let mx = MatexSolver::new(MatexOptions::default().tol(1e-10))
        .run(&sys, &spec())
        .unwrap();
    let e_tr = max_err_vs_analytic(&tr);
    let e_mx = max_err_vs_analytic(&mx);
    assert!(
        e_mx < e_tr,
        "MATEX ({e_mx:.3e}) should beat TR ({e_tr:.3e}) on PWL inputs"
    );
}
