//! Satellite-3: instrumentation must never perturb numerics. A MATEX
//! solver run with a live [`matex_obs::Obs`] recorder attached is
//! **bitwise identical** — every output sample, every float bit — to
//! the same run with the default disabled handle, across generated
//! (γ, tolerance) operating points. The obs layer only reads clocks and
//! writes to its own recorder; this test is the contract that it stays
//! that way.

use matex_circuit::{MnaSystem, Netlist};
use matex_core::{MatexOptions, MatexSolver, TransientEngine, TransientSpec};
use matex_waveform::{Pulse, Waveform};
use proptest::prelude::*;

/// A pulse-driven RC pair: exercises DC, factorization, the Krylov
/// ladder, and per-source combination on a circuit small enough for
/// many property cases.
fn circuit() -> MnaSystem {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    let p = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
    nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
        .unwrap();
    nl.add_resistor("r1", a, b, 500.0).unwrap();
    nl.add_resistor("r2", b, Netlist::ground(), 500.0).unwrap();
    nl.add_capacitor("ca", a, Netlist::ground(), 1e-13).unwrap();
    nl.add_capacitor("cb", b, Netlist::ground(), 2e-13).unwrap();
    MnaSystem::assemble(&nl).unwrap()
}

/// Runs the solver and returns every output float as raw bits (times
/// then all series), so equality below means bitwise equality.
fn run_bits(obs: matex_obs::Obs, gamma: f64, tol: f64) -> Vec<u64> {
    let sys = circuit();
    let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
    let mut opts = MatexOptions::default().tol(tol).gamma(gamma);
    opts.obs = obs;
    let result = MatexSolver::new(opts).run(&sys, &spec).unwrap();
    let mut bits: Vec<u64> = result.times().iter().map(|t| t.to_bits()).collect();
    for series in result.series() {
        bits.extend(series.iter().map(|v| v.to_bits()));
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn enabled_obs_is_bitwise_invisible_to_the_waveform(
        gamma in 5e-11f64..4e-10,
        tol in 1e-10f64..1e-7,
    ) {
        let disabled = run_bits(matex_obs::Obs::disabled(), gamma, tol);
        let enabled_handle = matex_obs::Obs::enabled();
        let enabled = run_bits(enabled_handle.clone(), gamma, tol);
        prop_assert_eq!(disabled, enabled);
        // And the recorder really was live — the run produced spans and
        // phase histograms, so the identity above covered the
        // instrumented path, not a silently disarmed one.
        prop_assert!(enabled_handle.is_enabled());
        let (p50, _, _) = enabled_handle.quantiles("solver_transient_seconds");
        prop_assert!(p50 > 0.0, "no transient histogram recorded");
    }
}
