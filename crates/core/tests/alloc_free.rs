//! Counting-allocator proof that the substitution hot path is
//! allocation-free: after warm-up, [`IntervalTerms::recompute`] must
//! perform **zero** heap allocations per invocation (ISSUE 1 acceptance
//! criterion).
//!
//! The counter is thread-local so the test is immune to other test
//! threads allocating concurrently.

use matex_circuit::{MnaSystem, Netlist};
use matex_core::{InputEval, IntervalTerms, Recorder, SolveStats, TransientSpec};
use matex_krylov::{build_basis_multi, ExpmParams, RationalOp, SnapshotEvaluator};
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use matex_waveform::{Pulse, Waveform};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` keeps TLS teardown from panicking inside the
        // allocator.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_so_far() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

/// A two-node RC with one pulse load: exercises both the sloped (3-pair)
/// and flat (1-pair) recompute paths.
fn pulsed_rc() -> MnaSystem {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    let p = Pulse::new(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11).unwrap();
    nl.add_isource("i", Netlist::ground(), a, Waveform::Pulse(p))
        .unwrap();
    nl.add_resistor("r1", a, b, 500.0).unwrap();
    nl.add_resistor("r2", b, Netlist::ground(), 500.0).unwrap();
    nl.add_capacitor("ca", a, Netlist::ground(), 1e-13).unwrap();
    nl.add_capacitor("cb", b, Netlist::ground(), 2e-13).unwrap();
    MnaSystem::assemble(&nl).unwrap()
}

#[test]
fn interval_terms_recompute_is_allocation_free_after_warmup() {
    let sys = pulsed_rc();
    let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
    let input = InputEval::new(&sys);
    let mut stats = SolveStats::default();
    let mut terms = IntervalTerms::new(sys.dim(), input.num_sources());
    let mut out = vec![0.0; sys.dim()];

    // Warm-up: touch every path once (sloped interval, flat interval,
    // f_into/p_into) so lazy TLS and buffer setup are behind us.
    terms.recompute(&sys, &lu_g, &input, 1.1e-10, 1.4e-10, &mut stats);
    terms.recompute(&sys, &lu_g, &input, 5e-10, 6e-10, &mut stats);
    terms.f_into(&mut out);
    terms.p_into(2e-11, &mut out);

    let before = allocations_so_far();
    for k in 0..100 {
        // Alternate sloped (inside the 1.0–1.5e-10 rise ramp) and flat
        // (post-pulse) intervals.
        let (t0, t1) = if k % 2 == 0 {
            (1.05e-10, 1.45e-10)
        } else {
            (6e-10, 8e-10)
        };
        terms.recompute(&sys, &lu_g, &input, t0, t1, &mut stats);
        terms.f_into(&mut out);
        terms.p_into(1e-11, &mut out);
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "substitution hot path allocated {allocated} times in 100 warm recomputes"
    );
    // Sanity: the loop really did the work it claims.
    assert!(stats.substitution_pairs >= 100);
}

#[test]
fn pooled_recompute_is_also_allocation_free() {
    // The parallel substitution path must stay allocation-free on the
    // submitting thread: the pool dispatches through a pre-allocated job
    // slot and the level-scheduled solve reuses the same `work` scratch.
    // (The counter is thread-local, so this measures exactly the hot
    // path's own allocations.)
    let sys = pulsed_rc();
    let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
    let sched = lu_g.solve_schedule();
    let pool = matex_par::ParPool::new(2);
    let input = InputEval::new(&sys);
    let mut stats = SolveStats::default();
    let mut terms = IntervalTerms::new(sys.dim(), input.num_sources());
    let par = Some((&pool, &sched));
    terms.recompute_with(&sys, &lu_g, &input, 1.1e-10, 1.4e-10, &mut stats, par);
    terms.recompute_with(&sys, &lu_g, &input, 5e-10, 6e-10, &mut stats, par);

    let before = allocations_so_far();
    for k in 0..100 {
        let (t0, t1) = if k % 2 == 0 {
            (1.05e-10, 1.45e-10)
        } else {
            (6e-10, 8e-10)
        };
        terms.recompute_with(&sys, &lu_g, &input, t0, t1, &mut stats, par);
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "pooled substitution hot path allocated {allocated} times in 100 warm recomputes"
    );
}

#[test]
fn snapshot_evaluation_hot_path_is_allocation_free_after_warmup() {
    // The ISSUE 4 criterion: the whole snapshot-evaluation path —
    // batched weights (`T_H`), the sub-step squaring ladder, pooled and
    // serial combination (`T_e`), and output recording — performs zero
    // heap allocations once warm.
    let sys = pulsed_rc();
    let gamma = 1e-10;
    let shifted = CsrMatrix::linear_combination(1.0, sys.c(), gamma, sys.g()).unwrap();
    let lu = SparseLu::factor(&shifted, &LuOptions::default()).unwrap();
    let op = RationalOp::new(&lu, sys.c(), gamma);
    let n = sys.dim();
    let v: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    let hs = [2e-11, 5e-11, 1e-10, 2e-10];
    let basis = build_basis_multi(&op, &v, &hs, &ExpmParams::with_tol(1e-10))
        .unwrap()
        .basis;

    let mut ev = SnapshotEvaluator::new();
    let pool = matex_par::ParPool::new(2);
    let mut batch = vec![0.0; n * hs.len()];
    let mut one = vec![0.0; n];
    let spec = TransientSpec::new(0.0, 1.0, 1.0 / 256.0).unwrap();
    let mut rec = Recorder::new(&spec, n);
    let sample_times = rec.sample_times().to_vec();

    // Warm-up: touch every path once (batch weights, serial + pooled
    // combination, ladder, rung combination, recording).
    ev.eval_many_into(&basis, &hs, None, &mut batch).unwrap();
    ev.eval_many_into(&basis, &hs, Some(&pool), &mut batch)
        .unwrap();
    ev.eval_ladder(&basis, 2e-10, 6, f64::INFINITY).unwrap();
    ev.combine_rung(&basis, 1, Some(&pool), &mut one);
    rec.record_at_sample(sample_times[0], &one);

    let before = allocations_so_far();
    for k in 0..100 {
        ev.weights_many(&basis, &hs).unwrap();
        ev.combine_into(&basis, hs.len(), None, &mut batch);
        ev.combine_into(&basis, hs.len(), Some(&pool), &mut batch);
        ev.eval_ladder(&basis, 2e-10, 6, f64::INFINITY).unwrap();
        ev.combine_rung(&basis, 1, Some(&pool), &mut one);
        rec.record_at_sample(sample_times[k + 1], &one);
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "snapshot-evaluation hot path allocated {allocated} times in 100 warm rounds"
    );
}

#[test]
fn masked_recompute_is_also_allocation_free() {
    let sys = pulsed_rc();
    let lu_g = SparseLu::factor(sys.g(), &LuOptions::default()).unwrap();
    let members = [0usize];
    let input = InputEval::masked(&sys, &members);
    let mut stats = SolveStats::default();
    let mut terms = IntervalTerms::new(sys.dim(), input.num_sources());
    terms.recompute(&sys, &lu_g, &input, 1.1e-10, 1.4e-10, &mut stats);

    let before = allocations_so_far();
    for _ in 0..50 {
        terms.recompute(&sys, &lu_g, &input, 1.05e-10, 1.45e-10, &mut stats);
    }
    assert_eq!(allocations_so_far() - before, 0);
}

#[test]
fn disabled_obs_emission_is_allocation_free() {
    // The observability contract (ISSUE 10): a disabled `Obs` handle
    // costs one branch per event and zero heap traffic, so threading it
    // through solver hot paths cannot regress the allocation-free
    // guarantees above.
    use std::time::{Duration, Instant};
    let obs = matex_obs::Obs::disabled();
    // Warm-up (nothing to warm, but keep the shape of the other tests).
    obs.add("warm", 1);

    let before = allocations_so_far();
    for k in 0..1000u64 {
        let span = obs.span("solver.arnoldi");
        drop(span);
        let mut labeled = obs.span_for("solver.dc", k);
        labeled.label("phase", "T_H");
        drop(labeled);
        obs.record_span(
            "solver.expm_ladder",
            k,
            Instant::now(),
            Duration::from_nanos(k),
            &[],
        );
        obs.add("solver_runs_total", 1);
        obs.add_labeled("dist_nodes_total", &[("outcome", "ok")], 1);
        obs.gauge("engine_queue_depth", k as i64);
        obs.observe("solver_transient_seconds", Duration::from_nanos(k));
        obs.observe_labeled(
            "engine_job_seconds",
            &[("path", "cold")],
            Duration::from_nanos(k),
        );
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "disabled-obs emission allocated {allocated} times in 1000 rounds"
    );
    // A tagged clone of a disabled handle is itself free of heap use.
    let before = allocations_so_far();
    for k in 0..1000u64 {
        let tagged = obs.tagged(k);
        drop(tagged);
    }
    assert_eq!(allocations_so_far() - before, 0);
}
